// Package index provides metric-space candidate indexes over instance
// (trajectory-sequence) feature vectors: a vantage-point tree with
// exact and visit-bounded approximate k-NN, a coarse k-means
// inverted-file (IVF) index with deterministic seeded k-means++
// initialization, and a BagIndex that maps instance hits back to
// their owning video sequence. The retrieval layer uses them to prune
// the database to a small candidate set before exact MIL re-ranking,
// turning per-round query cost from linear in the catalog into the
// index's sublinear probe cost plus a constant-size re-rank.
//
// Both structures measure in the Euclidean metric underlying
// kernel.SquaredDistance — the same metric the RBF kernel is a pure
// function of — so "near in the index" and "high kernel similarity"
// agree exactly. All construction and search paths are deterministic
// given the build seed, with ties broken by ascending point index.
//
// Storage is columnar: point vectors live in one kernel.FeatureBlock
// (or, with a Quantizer, one packed code buffer), so probe scans
// stream contiguous memory. Both structures also support incremental
// maintenance — Insert appends a point, Delete tombstones one — with
// searches over the mutated structure returning exactly what a fresh
// build over the surviving points would (the BagIndex layers a
// rebuild threshold on top so tombstones never accumulate unbounded).
package index

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"milvideo/internal/kernel"
)

// Errors returned by the builders.
var (
	// ErrNoPoints is returned when an index is built over zero vectors.
	ErrNoPoints = errors.New("index: no points")
	// ErrDim is returned when points (or a query) differ in dimension.
	ErrDim = errors.New("index: dimension mismatch")
)

// Neighbor is one k-NN result: the point's index in the build slice
// and its Euclidean distance to the query.
type Neighbor struct {
	Idx  int
	Dist float64
}

// Scratch holds per-query probe buffers (ADC tables, result heaps,
// aggregation maps) so repeated probes allocate nothing. A Scratch
// belongs to one search at a time; results returned by the
// scratch-accepting searches alias its buffers and must be consumed
// before the next search reuses it.
type Scratch struct {
	tab   []float64
	best  []Neighbor
	cord  []Neighbor
	res   []Neighbor
	bags  map[int]float64
	order []int
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// adcTab returns the scratch's ADC table sized for qz, filled for q.
func (sc *Scratch) adcTab(qz Quantizer, q []float64) []float64 {
	n := qz.TabLen()
	if cap(sc.tab) < n {
		sc.tab = make([]float64, n)
	}
	sc.tab = sc.tab[:n]
	qz.FillADC(q, sc.tab)
	return sc.tab
}

// VPTree is a vantage-point tree over a point set: a binary metric
// tree where each node splits its subset by the median distance to a
// vantage point, enabling triangle-inequality pruning. Build is
// O(n log n) distance evaluations; an exact k-NN visits a small
// fraction of the points when the intrinsic dimension is moderate
// (the 9–27-dim TS feature vectors here).
//
// With a Quantizer the tree indexes the quantized reconstructions:
// codes replace the float rows (CodeLen bytes per point instead of
// 8·dim), radii are measured between reconstructions, and searches
// measure through the per-query ADC table. Since the reconstructions
// form an ordinary point set under the Euclidean metric, pruning
// stays sound and searches stay exact — over the reconstructed
// points; the quantization displacement is the only approximation,
// and the retrieval layer's exact MIL re-rank absorbs it.
//
// Insert appends a point and threads it into the existing splits
// (radii never move, so the tree stays search-exact at the cost of
// gradually loosening balance); Delete tombstones one. The tree is
// not internally synchronized — BagIndex serializes mutation.
type VPTree struct {
	blk   *kernel.FeatureBlock // float rows (nil when quantized)
	codes *codeStore           // packed codes (nil when unquantized)
	dim   int
	nodes []vpNode
	root  int32
	dead  []bool
	live  int
}

// vpNode is one tree node. Leaves hold their points inline; inner
// nodes hold the vantage point and the median-radius split.
type vpNode struct {
	vantage int     // point index (inner nodes)
	radius  float64 // median distance from vantage to the subset
	inner   int32   // child holding points with d <= radius (−1 = none)
	outer   int32   // child holding points with d > radius (−1 = none)
	leaf    []int   // leaf point indices (nil for inner nodes)
}

// VPOptions tunes construction.
type VPOptions struct {
	// LeafSize is the subset size below which a node becomes a leaf
	// (default 8). Larger leaves trade pruning for fewer recursions.
	LeafSize int
	// Seed drives vantage-point selection (default 1). Any seed yields
	// a correct tree; the seed only shapes balance.
	Seed int64
	// Quantizer, when set, stores CodeLen-byte codes instead of float
	// rows and builds the tree over their reconstructions.
	Quantizer Quantizer
}

func (o VPOptions) withDefaults() VPOptions {
	if o.LeafSize <= 0 {
		o.LeafSize = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BuildVPTree constructs the tree over pts (copied into the tree's
// columnar store; the input slice is not retained).
func BuildVPTree(pts [][]float64, opt VPOptions) (*VPTree, error) {
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	dim := len(pts[0])
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDim, i, len(p), dim)
		}
	}
	opt = opt.withDefaults()
	if opt.Quantizer != nil && opt.Quantizer.Dim() != dim {
		return nil, fmt.Errorf("%w: quantizer dim %d, points dim %d", ErrDim, opt.Quantizer.Dim(), dim)
	}
	t := &VPTree{dim: dim, dead: make([]bool, len(pts)), live: len(pts)}
	if qz := opt.Quantizer; qz != nil {
		t.codes = newCodeStore(qz, len(pts))
		for _, p := range pts {
			t.codes.add(p)
		}
	} else {
		blk, err := kernel.FeatureBlockFromRows(pts)
		if err != nil {
			return nil, err
		}
		t.blk = blk
	}
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	t.root = t.build(ids, opt.LeafSize, rng)
	return t, nil
}

// ptDist returns the indexed-space distance between stored points i
// and j: serial float distance when unquantized, code-to-code
// reconstruction distance when quantized (the same grouping the ADC
// search path measures in).
func (t *VPTree) ptDist(i, j int) float64 {
	if t.codes != nil {
		return math.Sqrt(t.codes.qz.CodeDist(t.codes.at(i), t.codes.at(j)))
	}
	return math.Sqrt(t.blk.SquaredDistTo(i, t.blk.Row(j)))
}

// build recursively constructs the subtree over ids (which it may
// reorder) and returns its node index.
func (t *VPTree) build(ids []int, leafSize int, rng *rand.Rand) int32 {
	if len(ids) == 0 {
		return -1
	}
	if len(ids) <= leafSize {
		leaf := append([]int(nil), ids...)
		sort.Ints(leaf) // deterministic scan order
		t.nodes = append(t.nodes, vpNode{leaf: leaf})
		return int32(len(t.nodes) - 1)
	}
	// Random vantage point: swap it to the front, split the rest by
	// the median distance to it.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	vantage := ids[0]
	rest := ids[1:]
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = t.ptDist(id, vantage)
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	radius := dists[order[mid]]
	innerIDs := make([]int, 0, mid+1)
	outerIDs := make([]int, 0, len(order)-mid)
	for _, oi := range order {
		if dists[oi] <= radius {
			innerIDs = append(innerIDs, rest[oi])
		} else {
			outerIDs = append(outerIDs, rest[oi])
		}
	}
	node := vpNode{vantage: vantage, radius: radius}
	t.nodes = append(t.nodes, node)
	self := int32(len(t.nodes) - 1)
	inner := t.build(innerIDs, leafSize, rng)
	outer := t.build(outerIDs, leafSize, rng)
	t.nodes[self].inner = inner
	t.nodes[self].outer = outer
	return self
}

// Len reports the stored point count, tombstones included.
func (t *VPTree) Len() int {
	if t.codes != nil {
		return t.codes.len()
	}
	return t.blk.Len()
}

// Live reports the non-tombstoned point count.
func (t *VPTree) Live() int { return t.live }

// Tombstones reports the deleted-but-resident point count.
func (t *VPTree) Tombstones() int { return t.Len() - t.live }

// PointBytes reports the resident bytes of the point store (codes or
// float rows; the shared quantizer codebook is accounted by the
// owner).
func (t *VPTree) PointBytes() int {
	if t.codes != nil {
		return t.codes.bytes()
	}
	return t.blk.Bytes()
}

// Insert appends v and threads it down the existing splits: at each
// inner node it takes the side its vantage distance dictates —
// boundary-inclusive, matching the build's d <= radius rule — and
// lands in a leaf (or becomes a new one where a child was empty).
// Radii never move, so every search bound stays valid; only balance
// degrades, which the BagIndex rebuild threshold caps. Returns the
// new point's index, or -1 on dimension mismatch.
func (t *VPTree) Insert(v []float64) int {
	if len(v) != t.dim {
		return -1
	}
	var id int
	if t.codes != nil {
		id = t.codes.add(v)
	} else {
		id = t.blk.Append(v)
	}
	t.dead = append(t.dead, false)
	t.live++
	if t.root < 0 {
		t.nodes = append(t.nodes, vpNode{leaf: []int{id}})
		t.root = int32(len(t.nodes) - 1)
		return id
	}
	ni := t.root
	for {
		n := &t.nodes[ni]
		if n.leaf != nil {
			// Appended ids exceed every id already stored, so the
			// leaf's ascending scan order is preserved.
			n.leaf = append(n.leaf, id)
			return id
		}
		d := t.ptDist(id, n.vantage)
		child := &n.outer
		if d <= n.radius {
			child = &n.inner
		}
		if *child < 0 {
			t.nodes = append(t.nodes, vpNode{leaf: []int{id}})
			// Note: the append may have moved t.nodes; re-resolve the
			// parent before writing the child link.
			if d <= n.radius {
				t.nodes[ni].inner = int32(len(t.nodes) - 1)
			} else {
				t.nodes[ni].outer = int32(len(t.nodes) - 1)
			}
			return id
		}
		ni = *child
	}
}

// Delete tombstones point id: it stays resident (vantage geometry
// must not move) but no search returns it. Reports whether the id was
// live.
func (t *VPTree) Delete(id int) bool {
	if id < 0 || id >= len(t.dead) || t.dead[id] {
		return false
	}
	t.dead[id] = true
	t.live--
	return true
}

// KNN returns the exact k nearest neighbors of q in ascending
// distance (ties broken by ascending index) and the number of
// distance evaluations spent. k is clamped to the live point count.
func (t *VPTree) KNN(q []float64, k int) ([]Neighbor, int) {
	return t.knn(q, k, 0, math.Inf(1), nil)
}

// KNNBounded is the approximate search: it follows the same
// best-prune order as KNN but stops after maxEvals distance
// evaluations, returning the best k found so far. maxEvals <= 0 means
// exact. Results are deterministic for a fixed tree.
func (t *VPTree) KNNBounded(q []float64, k, maxEvals int) ([]Neighbor, int) {
	return t.knn(q, k, maxEvals, math.Inf(1), nil)
}

// KNNScratch is KNNBounded with caller-owned probe buffers: the
// returned slice aliases sc and is valid until sc's next use.
func (t *VPTree) KNNScratch(q []float64, k, maxEvals int, sc *Scratch) ([]Neighbor, int) {
	return t.knn(q, k, maxEvals, math.Inf(1), sc)
}

// KNNScratchBound is KNNScratch with an initial pruning radius: the
// search starts with tau = bound instead of +Inf, so subtrees and
// points wholly beyond bound are skipped from the first descent. When
// bound upper-bounds the true k-th neighbor distance the result is
// the exact top k; a tighter bound returns only the neighbors within
// it (possibly fewer than k) — the caller is trading completeness it
// has already covered elsewhere for the skipped work. A non-positive
// or NaN bound means unbounded. Results may include points slightly
// beyond the bound (leaves reached before pruning engaged); they are
// correct neighbors, just unpromised ones.
func (t *VPTree) KNNScratchBound(q []float64, k, maxEvals int, bound float64, sc *Scratch) ([]Neighbor, int) {
	return t.knn(q, k, maxEvals, bound, sc)
}

func (t *VPTree) knn(q []float64, k, maxEvals int, bound float64, sc *Scratch) ([]Neighbor, int) {
	if k <= 0 || len(q) != t.dim || t.live == 0 {
		return nil, 0
	}
	if k > t.live {
		k = t.live
	}
	if math.IsNaN(bound) || bound <= 0 {
		bound = math.Inf(1)
	}
	s := &vpSearch{t: t, q: q, k: k, maxEvals: maxEvals, tau: bound}
	if sc != nil {
		s.best = sc.best[:0]
	}
	if t.codes != nil {
		if sc != nil {
			s.tab = sc.adcTab(t.codes.qz, q)
		} else {
			s.tab = make([]float64, t.codes.qz.TabLen())
			t.codes.qz.FillADC(q, s.tab)
		}
	}
	s.visit(t.root)
	sort.Slice(s.best, func(a, b int) bool {
		if s.best[a].Dist != s.best[b].Dist {
			return s.best[a].Dist < s.best[b].Dist
		}
		return s.best[a].Idx < s.best[b].Idx
	})
	if sc != nil {
		sc.best = s.best // return grown buffer to the scratch
	}
	return s.best, s.evals
}

// vpSearch carries one query's state: a bounded worst-first result
// set (tau = current kth distance) and the evaluation budget.
type vpSearch struct {
	t        *VPTree
	q        []float64
	tab      []float64 // ADC table (quantized trees)
	k        int
	maxEvals int
	evals    int
	tau      float64
	best     []Neighbor // max-heap by (Dist, Idx)
}

// spent reports whether the evaluation budget is exhausted.
func (s *vpSearch) spent() bool { return s.maxEvals > 0 && s.evals >= s.maxEvals }

// offer records a candidate point, maintaining the k best.
func (s *vpSearch) offer(idx int, d float64) {
	if len(s.best) < s.k {
		s.best = append(s.best, Neighbor{Idx: idx, Dist: d})
		s.up(len(s.best) - 1)
	} else if worse(Neighbor{Idx: idx, Dist: d}, s.best[0]) {
		return
	} else {
		s.best[0] = Neighbor{Idx: idx, Dist: d}
		s.down(0)
	}
	// tau only ever tightens: with an initial bound the heap's worst
	// member may still sit beyond it, and the bound must keep pruning.
	if len(s.best) == s.k && s.best[0].Dist < s.tau {
		s.tau = s.best[0].Dist
	}
}

// worse orders neighbors by (Dist, Idx) descending-priority for the
// max-heap: a is worse than b when it should sit closer to the root.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Idx > b.Idx
}

func (s *vpSearch) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s.best[i], s.best[p]) {
			break
		}
		s.best[i], s.best[p] = s.best[p], s.best[i]
		i = p
	}
}

func (s *vpSearch) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s.best) && worse(s.best[l], s.best[m]) {
			m = l
		}
		if r < len(s.best) && worse(s.best[r], s.best[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.best[i], s.best[m] = s.best[m], s.best[i]
		i = m
	}
}

func (s *vpSearch) dist(idx int) float64 {
	s.evals++
	if s.t.codes != nil {
		return math.Sqrt(s.t.codes.qz.ADCDist(s.tab, s.t.codes.at(idx)))
	}
	return math.Sqrt(s.t.blk.SquaredDistTo(idx, s.q))
}

func (s *vpSearch) visit(ni int32) {
	if ni < 0 || s.spent() {
		return
	}
	n := &s.t.nodes[ni]
	if n.leaf != nil {
		for _, idx := range n.leaf {
			if s.t.dead[idx] {
				continue
			}
			if s.spent() {
				return
			}
			s.offer(idx, s.dist(idx))
		}
		return
	}
	// A tombstoned vantage still routes — its position defines the
	// split — but is never offered as a result.
	d := s.dist(n.vantage)
	if !s.t.dead[n.vantage] {
		s.offer(n.vantage, d)
	}
	// Descend the side containing q first; the far side is visited
	// only when the current kth distance still reaches across the
	// median shell (boundary-inclusive, so exact ties never prune).
	if d <= n.radius {
		s.visit(n.inner)
		if d+s.tau >= n.radius {
			s.visit(n.outer)
		}
	} else {
		s.visit(n.outer)
		if d-s.tau <= n.radius {
			s.visit(n.inner)
		}
	}
}
