// Package index provides metric-space candidate indexes over instance
// (trajectory-sequence) feature vectors: a vantage-point tree with
// exact and visit-bounded approximate k-NN, a coarse k-means
// inverted-file (IVF) index with deterministic seeded k-means++
// initialization, and a BagIndex that maps instance hits back to
// their owning video sequence. The retrieval layer uses them to prune
// the database to a small candidate set before exact MIL re-ranking,
// turning per-round query cost from linear in the catalog into the
// index's sublinear probe cost plus a constant-size re-rank.
//
// Both structures measure in the Euclidean metric underlying
// kernel.SquaredDistance — the same metric the RBF kernel is a pure
// function of — so "near in the index" and "high kernel similarity"
// agree exactly. All construction and search paths are deterministic
// given the build seed, with ties broken by ascending point index.
package index

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"milvideo/internal/kernel"
)

// Errors returned by the builders.
var (
	// ErrNoPoints is returned when an index is built over zero vectors.
	ErrNoPoints = errors.New("index: no points")
	// ErrDim is returned when points (or a query) differ in dimension.
	ErrDim = errors.New("index: dimension mismatch")
)

// Neighbor is one k-NN result: the point's index in the build slice
// and its Euclidean distance to the query.
type Neighbor struct {
	Idx  int
	Dist float64
}

// VPTree is a vantage-point tree over a fixed point set: a binary
// metric tree where each node splits its subset by the median
// distance to a vantage point, enabling triangle-inequality pruning.
// Build is O(n log n) distance evaluations; an exact k-NN visits a
// small fraction of the points when the intrinsic dimension is
// moderate (the 9–27-dim TS feature vectors here).
type VPTree struct {
	pts   [][]float64
	dim   int
	nodes []vpNode
	root  int32
}

// vpNode is one tree node. Leaves hold their points inline; inner
// nodes hold the vantage point and the median-radius split.
type vpNode struct {
	vantage int     // point index (inner nodes)
	radius  float64 // median distance from vantage to the subset
	inner   int32   // child holding points with d <= radius (−1 = none)
	outer   int32   // child holding points with d > radius (−1 = none)
	leaf    []int   // leaf point indices (nil for inner nodes)
}

// VPOptions tunes construction.
type VPOptions struct {
	// LeafSize is the subset size below which a node becomes a leaf
	// (default 8). Larger leaves trade pruning for fewer recursions.
	LeafSize int
	// Seed drives vantage-point selection (default 1). Any seed yields
	// a correct tree; the seed only shapes balance.
	Seed int64
}

func (o VPOptions) withDefaults() VPOptions {
	if o.LeafSize <= 0 {
		o.LeafSize = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BuildVPTree constructs the tree over pts. The slice is retained
// (not copied); callers must not mutate the vectors afterwards.
func BuildVPTree(pts [][]float64, opt VPOptions) (*VPTree, error) {
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	dim := len(pts[0])
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDim, i, len(p), dim)
		}
	}
	opt = opt.withDefaults()
	t := &VPTree{pts: pts, dim: dim}
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	t.root = t.build(ids, opt.LeafSize, rng)
	return t, nil
}

// build recursively constructs the subtree over ids (which it may
// reorder) and returns its node index.
func (t *VPTree) build(ids []int, leafSize int, rng *rand.Rand) int32 {
	if len(ids) == 0 {
		return -1
	}
	if len(ids) <= leafSize {
		leaf := append([]int(nil), ids...)
		sort.Ints(leaf) // deterministic scan order
		t.nodes = append(t.nodes, vpNode{leaf: leaf})
		return int32(len(t.nodes) - 1)
	}
	// Random vantage point: swap it to the front, split the rest by
	// the median distance to it.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	vantage := ids[0]
	rest := ids[1:]
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = math.Sqrt(kernel.SquaredDistance(t.pts[vantage], t.pts[id]))
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	radius := dists[order[mid]]
	innerIDs := make([]int, 0, mid+1)
	outerIDs := make([]int, 0, len(order)-mid)
	for _, oi := range order {
		if dists[oi] <= radius {
			innerIDs = append(innerIDs, rest[oi])
		} else {
			outerIDs = append(outerIDs, rest[oi])
		}
	}
	node := vpNode{vantage: vantage, radius: radius}
	t.nodes = append(t.nodes, node)
	self := int32(len(t.nodes) - 1)
	inner := t.build(innerIDs, leafSize, rng)
	outer := t.build(outerIDs, leafSize, rng)
	t.nodes[self].inner = inner
	t.nodes[self].outer = outer
	return self
}

// Len reports the indexed point count.
func (t *VPTree) Len() int { return len(t.pts) }

// KNN returns the exact k nearest neighbors of q in ascending
// distance (ties broken by ascending index) and the number of
// distance evaluations spent. k is clamped to the point count.
func (t *VPTree) KNN(q []float64, k int) ([]Neighbor, int) {
	return t.knn(q, k, 0)
}

// KNNBounded is the approximate search: it follows the same
// best-prune order as KNN but stops after maxEvals distance
// evaluations, returning the best k found so far. maxEvals <= 0 means
// exact. Results are deterministic for a fixed tree.
func (t *VPTree) KNNBounded(q []float64, k, maxEvals int) ([]Neighbor, int) {
	return t.knn(q, k, maxEvals)
}

func (t *VPTree) knn(q []float64, k, maxEvals int) ([]Neighbor, int) {
	if k <= 0 || len(q) != t.dim || len(t.pts) == 0 {
		return nil, 0
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	s := &vpSearch{t: t, q: q, k: k, maxEvals: maxEvals, tau: math.Inf(1)}
	s.visit(t.root)
	sort.Slice(s.best, func(a, b int) bool {
		if s.best[a].Dist != s.best[b].Dist {
			return s.best[a].Dist < s.best[b].Dist
		}
		return s.best[a].Idx < s.best[b].Idx
	})
	return s.best, s.evals
}

// vpSearch carries one query's state: a bounded worst-first result
// set (tau = current kth distance) and the evaluation budget.
type vpSearch struct {
	t        *VPTree
	q        []float64
	k        int
	maxEvals int
	evals    int
	tau      float64
	best     []Neighbor // max-heap by (Dist, Idx)
}

// spent reports whether the evaluation budget is exhausted.
func (s *vpSearch) spent() bool { return s.maxEvals > 0 && s.evals >= s.maxEvals }

// offer records a candidate point, maintaining the k best.
func (s *vpSearch) offer(idx int, d float64) {
	if len(s.best) < s.k {
		s.best = append(s.best, Neighbor{Idx: idx, Dist: d})
		s.up(len(s.best) - 1)
	} else if worse(Neighbor{Idx: idx, Dist: d}, s.best[0]) {
		return
	} else {
		s.best[0] = Neighbor{Idx: idx, Dist: d}
		s.down(0)
	}
	if len(s.best) == s.k {
		s.tau = s.best[0].Dist
	}
}

// worse orders neighbors by (Dist, Idx) descending-priority for the
// max-heap: a is worse than b when it should sit closer to the root.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Idx > b.Idx
}

func (s *vpSearch) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s.best[i], s.best[p]) {
			break
		}
		s.best[i], s.best[p] = s.best[p], s.best[i]
		i = p
	}
}

func (s *vpSearch) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s.best) && worse(s.best[l], s.best[m]) {
			m = l
		}
		if r < len(s.best) && worse(s.best[r], s.best[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.best[i], s.best[m] = s.best[m], s.best[i]
		i = m
	}
}

func (s *vpSearch) dist(idx int) float64 {
	s.evals++
	return math.Sqrt(kernel.SquaredDistance(s.q, s.t.pts[idx]))
}

func (s *vpSearch) visit(ni int32) {
	if ni < 0 || s.spent() {
		return
	}
	n := &s.t.nodes[ni]
	if n.leaf != nil {
		for _, idx := range n.leaf {
			if s.spent() {
				return
			}
			s.offer(idx, s.dist(idx))
		}
		return
	}
	d := s.dist(n.vantage)
	s.offer(n.vantage, d)
	// Descend the side containing q first; the far side is visited
	// only when the current kth distance still reaches across the
	// median shell (boundary-inclusive, so exact ties never prune).
	if d <= n.radius {
		s.visit(n.inner)
		if d+s.tau >= n.radius {
			s.visit(n.outer)
		}
	} else {
		s.visit(n.outer)
		if d-s.tau <= n.radius {
			s.visit(n.inner)
		}
	}
}
