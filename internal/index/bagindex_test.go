package index

import (
	"math"
	"math/rand"
	"testing"

	"milvideo/internal/window"
)

// synthVSs builds n bags of 1–3 TSs with 3-point, 3-dim vectors
// (flattened instance dim 9), mirroring the retrieval fixtures.
func synthVSs(seed int64, n int) []window.VS {
	rng := rand.New(rand.NewSource(seed))
	db := make([]window.VS, n)
	for i := range db {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		for k := 0; k < 1+rng.Intn(3); k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db[i] = vs
	}
	return db
}

// TestBagIndexCandidates: for both kinds, probing with a bag's own
// instance puts that bag first; results stay within bounds and are
// deterministic.
func TestBagIndexCandidates(t *testing.T) {
	db := synthVSs(5, 60)
	for _, kind := range Kinds() {
		bi, err := Build(db, kind, Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if bi.Bags() != 60 {
			t.Fatalf("%s: bags %d, want 60", kind, bi.Bags())
		}
		if bi.Instances() == 0 {
			t.Fatalf("%s: no instances indexed", kind)
		}
		probe := db[17].TSs[0].Flat()
		cands, stats := bi.Candidates([][]float64{probe}, 8)
		if len(cands) == 0 || len(cands) > 8 {
			t.Fatalf("%s: %d candidates for c=8", kind, len(cands))
		}
		if cands[0] != 17 {
			t.Fatalf("%s: self-probe ranked bag %d first, want 17", kind, cands[0])
		}
		if stats.Probes != 1 || stats.DistEvals == 0 {
			t.Fatalf("%s: odd stats %+v", kind, stats)
		}
		again, _ := bi.Candidates([][]float64{probe}, 8)
		for i := range cands {
			if cands[i] != again[i] {
				t.Fatalf("%s: candidates nondeterministic at %d", kind, i)
			}
		}
	}
}

// TestCandidatesDist: the distance-carrying probe agrees with
// Candidates on membership and order, distances are non-negative and
// non-decreasing, and the empty cases return nil exactly like the
// position-only form.
func TestCandidatesDist(t *testing.T) {
	db := synthVSs(8, 50)
	for _, kind := range Kinds() {
		bi, err := Build(db, kind, Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		probes := [][]float64{db[3].TSs[0].Flat(), db[21].TSs[0].Flat()}
		hits, hstats := bi.CandidatesDist(probes, 12)
		cands, cstats := bi.Candidates(probes, 12)
		if len(hits) != len(cands) {
			t.Fatalf("%s: %d hits vs %d candidates", kind, len(hits), len(cands))
		}
		for i, h := range hits {
			if h.Pos != cands[i] {
				t.Fatalf("%s: hit %d is bag %d, Candidates has %d", kind, i, h.Pos, cands[i])
			}
			if h.Dist < 0 {
				t.Fatalf("%s: negative distance %v", kind, h.Dist)
			}
			if i > 0 && h.Dist < hits[i-1].Dist {
				t.Fatalf("%s: distances not sorted at %d: %v < %v", kind, i, h.Dist, hits[i-1].Dist)
			}
		}
		if hstats.Probes != cstats.Probes {
			t.Fatalf("%s: probe stats diverge: %+v vs %+v", kind, hstats, cstats)
		}
	}
	empty := []window.VS{{Index: 0}}
	bi, err := Build(empty, KindVPTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := bi.CandidatesDist([][]float64{{1, 2, 3}}, 4); hits != nil {
		t.Fatalf("instanceless index returned hits %v", hits)
	}
}

// TestCandidatesDistBounded: the scout/carry probe surface. Nil
// bounds reproduce CandidatesDist exactly while exporting each
// probe's achieved k-th instance distance, carrying those very
// distances back as bounds changes no answer (a probe's own k-th
// distance upper-bounds itself) and costs no extra evals, and the
// instanceless index stays nil.
func TestCandidatesDistBounded(t *testing.T) {
	db := synthVSs(9, 60)
	for _, kind := range Kinds() {
		bi, err := Build(db, kind, Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		probes := [][]float64{db[5].TSs[0].Flat(), db[40].TSs[0].Flat()}
		want, wstats := bi.CandidatesDist(probes, 10)
		hits, kth, stats := bi.CandidatesDistBounded(probes, 10, nil)
		if len(hits) != len(want) {
			t.Fatalf("%s: %d hits with nil bounds, CandidatesDist has %d", kind, len(hits), len(want))
		}
		for i := range want {
			if hits[i] != want[i] {
				t.Fatalf("%s: hit %d = %+v, CandidatesDist has %+v", kind, i, hits[i], want[i])
			}
		}
		if stats.DistEvals != wstats.DistEvals {
			t.Fatalf("%s: nil-bound evals %d, CandidatesDist %d", kind, stats.DistEvals, wstats.DistEvals)
		}
		if len(kth) != len(probes) {
			t.Fatalf("%s: %d exported bounds for %d probes", kind, len(kth), len(probes))
		}
		for qi, d := range kth {
			// +Inf is legal (a probe that found fewer than k neighbors
			// promises nothing); a finite bound must be a distance.
			if d < 0 || math.IsNaN(d) {
				t.Fatalf("%s: probe %d exported bound %v", kind, qi, d)
			}
			if kind == KindVPTree && math.IsInf(d, 1) {
				t.Fatalf("%s: probe %d found fewer than k of %d live instances", kind, qi, bi.Instances())
			}
		}
		carried, _, cstats := bi.CandidatesDistBounded(probes, 10, kth)
		if len(carried) != len(hits) {
			t.Fatalf("%s: carrying own bounds changed the hit count: %d vs %d", kind, len(carried), len(hits))
		}
		for i := range hits {
			if carried[i] != hits[i] {
				t.Fatalf("%s: carried hit %d = %+v, want %+v", kind, i, carried[i], hits[i])
			}
		}
		if cstats.DistEvals > stats.DistEvals {
			t.Fatalf("%s: carried bounds cost more evals: %d vs %d", kind, cstats.DistEvals, stats.DistEvals)
		}
	}
	empty := []window.VS{{Index: 0}}
	bi, err := Build(empty, KindVPTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hits, kth, _ := bi.CandidatesDistBounded([][]float64{{1, 2, 3}}, 4, nil); hits != nil || len(kth) != 1 || !math.IsInf(kth[0], 1) {
		t.Fatalf("instanceless index returned hits %v bounds %v", hits, kth)
	}
}

// TestBagIndexEmptyAndMismatch: empty databases and empty VSs are
// tolerated; dim-mismatched probes are skipped; ragged instance dims
// fail the build.
func TestBagIndexEmptyAndMismatch(t *testing.T) {
	empty := []window.VS{{Index: 0}, {Index: 1}}
	bi, err := Build(empty, KindVPTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cands, _ := bi.Candidates([][]float64{{1, 2, 3}}, 4); cands != nil {
		t.Fatalf("instanceless index returned candidates %v", cands)
	}

	db := synthVSs(6, 10)
	bi, err = Build(db, KindIVF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cands, stats := bi.Candidates([][]float64{{1, 2}}, 4); len(cands) != 0 || stats.Probes != 0 {
		t.Fatalf("mismatched probe returned candidates %v (stats %+v)", cands, stats)
	}

	bad := synthVSs(7, 4)
	bad[2].TSs[0].Vectors = bad[2].TSs[0].Vectors[:2] // shorter flat vector
	if _, err := Build(bad, KindVPTree, Options{}); err == nil {
		t.Fatal("ragged instance dims built successfully")
	}

	if _, err := Build(db, Kind("lsh"), Options{}); err == nil {
		t.Fatal("unknown kind built successfully")
	}
}
