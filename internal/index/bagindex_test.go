package index

import (
	"math/rand"
	"testing"

	"milvideo/internal/window"
)

// synthVSs builds n bags of 1–3 TSs with 3-point, 3-dim vectors
// (flattened instance dim 9), mirroring the retrieval fixtures.
func synthVSs(seed int64, n int) []window.VS {
	rng := rand.New(rand.NewSource(seed))
	db := make([]window.VS, n)
	for i := range db {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		for k := 0; k < 1+rng.Intn(3); k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db[i] = vs
	}
	return db
}

// TestBagIndexCandidates: for both kinds, probing with a bag's own
// instance puts that bag first; results stay within bounds and are
// deterministic.
func TestBagIndexCandidates(t *testing.T) {
	db := synthVSs(5, 60)
	for _, kind := range Kinds() {
		bi, err := Build(db, kind, Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if bi.Bags() != 60 {
			t.Fatalf("%s: bags %d, want 60", kind, bi.Bags())
		}
		if bi.Instances() == 0 {
			t.Fatalf("%s: no instances indexed", kind)
		}
		probe := db[17].TSs[0].Flat()
		cands, stats := bi.Candidates([][]float64{probe}, 8)
		if len(cands) == 0 || len(cands) > 8 {
			t.Fatalf("%s: %d candidates for c=8", kind, len(cands))
		}
		if cands[0] != 17 {
			t.Fatalf("%s: self-probe ranked bag %d first, want 17", kind, cands[0])
		}
		if stats.Probes != 1 || stats.DistEvals == 0 {
			t.Fatalf("%s: odd stats %+v", kind, stats)
		}
		again, _ := bi.Candidates([][]float64{probe}, 8)
		for i := range cands {
			if cands[i] != again[i] {
				t.Fatalf("%s: candidates nondeterministic at %d", kind, i)
			}
		}
	}
}

// TestBagIndexEmptyAndMismatch: empty databases and empty VSs are
// tolerated; dim-mismatched probes are skipped; ragged instance dims
// fail the build.
func TestBagIndexEmptyAndMismatch(t *testing.T) {
	empty := []window.VS{{Index: 0}, {Index: 1}}
	bi, err := Build(empty, KindVPTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cands, _ := bi.Candidates([][]float64{{1, 2, 3}}, 4); cands != nil {
		t.Fatalf("instanceless index returned candidates %v", cands)
	}

	db := synthVSs(6, 10)
	bi, err = Build(db, KindIVF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cands, stats := bi.Candidates([][]float64{{1, 2}}, 4); len(cands) != 0 || stats.Probes != 0 {
		t.Fatalf("mismatched probe returned candidates %v (stats %+v)", cands, stats)
	}

	bad := synthVSs(7, 4)
	bad[2].TSs[0].Vectors = bad[2].TSs[0].Vectors[:2] // shorter flat vector
	if _, err := Build(bad, KindVPTree, Options{}); err == nil {
		t.Fatal("ragged instance dims built successfully")
	}

	if _, err := Build(db, Kind("lsh"), Options{}); err == nil {
		t.Fatal("unknown kind built successfully")
	}
}
