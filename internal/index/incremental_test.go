package index

import (
	"math/rand"
	"testing"

	"milvideo/internal/kernel"
	"milvideo/internal/window"
)

// The incremental-maintenance property: any interleaving of inserts
// and deletes, followed by a query, returns exactly what a fresh
// build over the surviving points returns. Searches are exact over
// the indexed point set and tie-stable, so the property is checked by
// identity — mapping both sides' point ids back to a shared stable
// key — not by tolerance.

// ptUniverse is a pool of stable keyed points driving the scripts.
type ptUniverse struct {
	vecs  [][]float64
	alive []bool
	// key maps an index id (per structure instance) to a universe key.
}

func newUniverse(seed int64, n, dim int) *ptUniverse {
	rng := rand.New(rand.NewSource(seed))
	u := &ptUniverse{vecs: make([][]float64, n), alive: make([]bool, n)}
	for i := range u.vecs {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		u.vecs[i] = v
	}
	return u
}

func (u *ptUniverse) survivors() [][]float64 {
	var out [][]float64
	for i, v := range u.vecs {
		if u.alive[i] {
			out = append(out, v)
		}
	}
	return out
}

// keysOf maps neighbor ids back to universe keys through id2key.
func keysOf(nbs []Neighbor, id2key []int) []int {
	out := make([]int, len(nbs))
	for i, nb := range nbs {
		out[i] = id2key[nb.Idx]
	}
	return out
}

// TestVPTreeIncrementalMatchesFresh: interleavings of Insert/Delete
// on a VP-tree answer k-NN queries identically (same points, same
// distances) to a fresh build over the survivors.
func TestVPTreeIncrementalMatchesFresh(t *testing.T) {
	const dim, initial, ops = 9, 60, 90
	u := newUniverse(101, initial+ops, dim)
	rng := rand.New(rand.NewSource(102))

	init := u.vecs[:initial]
	tr, err := BuildVPTree(init, VPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id2key := make([]int, initial) // incremental tree id -> universe key
	key2id := make(map[int]int, initial)
	for i := 0; i < initial; i++ {
		id2key[i] = i
		key2id[i] = i
		u.alive[i] = true
	}
	next := initial

	check := func(step int) {
		fresh, err := BuildVPTree(u.survivors(), VPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fresh2key := make([]int, 0, len(u.vecs))
		for key, alive := range u.alive {
			if alive {
				fresh2key = append(fresh2key, key)
			}
		}
		for trial := 0; trial < 4; trial++ {
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(12)
			got, _ := tr.KNN(q, k)
			want, _ := fresh.KNN(q, k)
			gk, wk := keysOf(got, id2key), keysOf(want, fresh2key)
			if len(gk) != len(wk) {
				t.Fatalf("step %d: incremental returned %d, fresh %d", step, len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || got[i].Dist != want[i].Dist {
					t.Fatalf("step %d trial %d pos %d: incremental (key %d, d=%v) vs fresh (key %d, d=%v)",
						step, trial, i, gk[i], got[i].Dist, wk[i], want[i].Dist)
				}
			}
		}
	}

	for op := 0; op < ops; op++ {
		if tr.Live() > 5 && rng.Intn(3) == 0 {
			// Delete a random live key.
			var liveKeys []int
			for key, alive := range u.alive {
				if alive {
					liveKeys = append(liveKeys, key)
				}
			}
			key := liveKeys[rng.Intn(len(liveKeys))]
			if !tr.Delete(key2id[key]) {
				t.Fatalf("op %d: delete of live key %d refused", op, key)
			}
			u.alive[key] = false
		} else {
			key := next
			next++
			id := tr.Insert(u.vecs[key])
			if id < 0 {
				t.Fatalf("op %d: insert refused", op)
			}
			for id >= len(id2key) {
				id2key = append(id2key, -1)
			}
			id2key[id] = key
			key2id[key] = id
			u.alive[key] = true
		}
		if op%9 == 0 {
			check(op)
		}
	}
	check(ops)
	if tr.Tombstones() == 0 {
		t.Fatal("script never tombstoned a point")
	}
	if tr.Insert(make([]float64, dim+1)) != -1 {
		t.Fatal("dim-mismatched insert accepted")
	}
	if tr.Delete(-1) || tr.Delete(1<<20) {
		t.Fatal("out-of-range delete accepted")
	}
}

// TestIVFIncrementalMatchesFresh: the same property for the inverted
// file, with the coarse centroids pinned across builds (list
// membership is a pure function of the float vector and the
// centroids, so growth and fresh assignment agree exactly).
func TestIVFIncrementalMatchesFresh(t *testing.T) {
	const dim, initial, ops = 9, 80, 70
	u := newUniverse(201, initial+ops, dim)
	rng := rand.New(rand.NewSource(202))

	base, err := BuildIVF(u.vecs[:initial], IVFOptions{Clusters: 9})
	if err != nil {
		t.Fatal(err)
	}
	centroids := base.Centroids()

	f, err := BuildIVF(u.vecs[:initial], IVFOptions{Centroids: centroids})
	if err != nil {
		t.Fatal(err)
	}
	id2key := make([]int, initial)
	key2id := make(map[int]int, initial)
	for i := 0; i < initial; i++ {
		id2key[i] = i
		key2id[i] = i
		u.alive[i] = true
	}
	next := initial

	check := func(step int) {
		fresh, err := BuildIVF(u.survivors(), IVFOptions{Centroids: centroids})
		if err != nil {
			t.Fatal(err)
		}
		fresh2key := make([]int, 0, len(u.vecs))
		for key, alive := range u.alive {
			if alive {
				fresh2key = append(fresh2key, key)
			}
		}
		for trial := 0; trial < 4; trial++ {
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(10)
			nprobe := 1 + rng.Intn(len(centroids))
			got, _ := f.Search(q, k, nprobe)
			want, _ := fresh.Search(q, k, nprobe)
			gk, wk := keysOf(got, id2key), keysOf(want, fresh2key)
			if len(gk) != len(wk) {
				t.Fatalf("step %d: incremental returned %d, fresh %d", step, len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || got[i].Dist != want[i].Dist {
					t.Fatalf("step %d trial %d pos %d: incremental key %d vs fresh key %d",
						step, trial, i, gk[i], wk[i])
				}
			}
		}
	}

	for op := 0; op < ops; op++ {
		if f.Live() > 5 && rng.Intn(3) == 0 {
			var liveKeys []int
			for key, alive := range u.alive {
				if alive {
					liveKeys = append(liveKeys, key)
				}
			}
			key := liveKeys[rng.Intn(len(liveKeys))]
			if !f.Delete(key2id[key]) {
				t.Fatalf("op %d: delete of live key %d refused", op, key)
			}
			u.alive[key] = false
		} else {
			key := next
			next++
			id := f.Insert(u.vecs[key])
			if id < 0 {
				t.Fatalf("op %d: insert refused", op)
			}
			for id >= len(id2key) {
				id2key = append(id2key, -1)
			}
			id2key[id] = key
			key2id[key] = id
			u.alive[key] = true
		}
		if op%7 == 0 {
			check(op)
		}
	}
	check(ops)
	if f.Tombstones() == 0 {
		t.Fatal("script never tombstoned a point")
	}
}

// quantizedUniverse trains one quantizer over the whole key pool so
// incremental and fresh builds share a reconstruction lattice.
func trainUniverseQuantizer(t *testing.T, u *ptUniverse, kind QuantKind) Quantizer {
	t.Helper()
	blk, err := kernel.FeatureBlockFromRows(u.vecs)
	if err != nil {
		t.Fatal(err)
	}
	qz, err := TrainQuantizer(kind, blk, 1)
	if err != nil {
		t.Fatal(err)
	}
	return qz
}

// TestQuantizedIncrementalMatchesFresh: the equivalence property
// holds under quantization too. Quantization collapses points onto a
// shared lattice, so exact distance ties are common; queries use
// exhaustive depth (k = live count), where set identity is
// independent of tie order between the two id spaces.
func TestQuantizedIncrementalMatchesFresh(t *testing.T) {
	const dim, initial, ops = 9, 50, 40
	for _, kind := range []QuantKind{QuantScalar, QuantPQ} {
		u := newUniverse(301, initial+ops, dim)
		rng := rand.New(rand.NewSource(302))
		qz := trainUniverseQuantizer(t, u, kind)

		tr, err := BuildVPTree(u.vecs[:initial], VPOptions{Quantizer: qz})
		if err != nil {
			t.Fatal(err)
		}
		id2key := make([]int, initial)
		key2id := make(map[int]int, initial)
		for i := 0; i < initial; i++ {
			id2key[i] = i
			key2id[i] = i
			u.alive[i] = true
		}
		next := initial
		for op := 0; op < ops; op++ {
			if tr.Live() > 5 && rng.Intn(3) == 0 {
				var liveKeys []int
				for key, alive := range u.alive {
					if alive {
						liveKeys = append(liveKeys, key)
					}
				}
				key := liveKeys[rng.Intn(len(liveKeys))]
				tr.Delete(key2id[key])
				u.alive[key] = false
			} else {
				key := next
				next++
				id := tr.Insert(u.vecs[key])
				if id != len(id2key) {
					t.Fatalf("insert id %d, want %d (ids are append-order)", id, len(id2key))
				}
				id2key = append(id2key, key)
				key2id[key] = id
				u.alive[key] = true
			}
		}
		fresh, err := BuildVPTree(u.survivors(), VPOptions{Quantizer: qz})
		if err != nil {
			t.Fatal(err)
		}
		fresh2key := make([]int, 0, len(u.vecs))
		for key, alive := range u.alive {
			if alive {
				fresh2key = append(fresh2key, key)
			}
		}
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			got, _ := tr.KNN(q, tr.Live())
			want, _ := fresh.KNN(q, fresh.Live())
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: %d live vs %d", kind, trial, len(got), len(want))
			}
			gotKeys := make(map[int]float64, len(got))
			for _, nb := range got {
				gotKeys[id2key[nb.Idx]] = nb.Dist
			}
			for i, nb := range want {
				key := fresh2key[nb.Idx]
				d, ok := gotKeys[key]
				if !ok || d != nb.Dist {
					t.Fatalf("%s trial %d pos %d: fresh key %d (d=%v) missing or mismatched (d=%v)",
						kind, trial, i, key, nb.Dist, d)
				}
			}
		}
	}
}

// synthVSsAt builds bags like synthVSs with VS indices starting at
// base (so scripts can add fresh bags with unseen indices).
func synthVSsAt(seed int64, base, n int) []window.VS {
	db := synthVSs(seed, n)
	for i := range db {
		db[i].Index = base + i
	}
	return db
}

// TestBagIndexUpdateMatchesFresh: the full-stack property — a
// BagIndex driven through interleaved Update deltas (VS insertions
// and removals) returns the same candidate sets as a fresh Build over
// the surviving database, for both kinds and for quantized variants
// (sharing the pre-trained quantizer and, for IVF, pinned centroids).
func TestBagIndexUpdateMatchesFresh(t *testing.T) {
	pool := synthVSsAt(40, 0, 120)
	poolBlk := func() *kernel.FeatureBlock {
		var rows [][]float64
		for _, vs := range pool {
			for _, ts := range vs.TSs {
				rows = append(rows, ts.Flat())
			}
		}
		blk, err := kernel.FeatureBlockFromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		return blk
	}()

	type variant struct {
		name string
		kind Kind
		opt  Options
		// exhaustive: probe with full depth and candidate budget.
		// Quantized variants need it — the lattice makes exact
		// distance ties common, and truncated k-NN picks tied points
		// by id, which differs between the two id spaces. At full
		// depth every live point contributes, so bag scores and the
		// (score, position) order are identical.
		exhaustive bool
	}
	var variants []variant
	baseIVF, err := BuildIVF(func() [][]float64 {
		var rows [][]float64
		for _, vs := range pool[:60] {
			for _, ts := range vs.TSs {
				rows = append(rows, ts.Flat())
			}
		}
		return rows
	}(), IVFOptions{Clusters: 8})
	if err != nil {
		t.Fatal(err)
	}
	centroids := baseIVF.Centroids()
	variants = append(variants,
		variant{name: "vptree", kind: KindVPTree, opt: Options{RebuildFraction: 10}},
		variant{name: "ivf", kind: KindIVF, opt: Options{RebuildFraction: 10, Centroids: centroids}},
	)
	for _, qk := range []QuantKind{QuantScalar, QuantPQ} {
		qz, err := TrainQuantizer(qk, poolBlk, 1)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive := Options{RebuildFraction: 10, Quantizer: qz, PerProbeK: 1 << 20}
		ivfOpt := exhaustive
		ivfOpt.Centroids = centroids
		ivfOpt.NProbe = 1 << 20
		variants = append(variants,
			variant{name: "vptree+" + string(qk), kind: KindVPTree, opt: exhaustive, exhaustive: true},
			variant{name: "ivf+" + string(qk), kind: KindIVF, opt: ivfOpt, exhaustive: true},
		)
	}

	for _, v := range variants {
		rng := rand.New(rand.NewSource(77))
		db := append([]window.VS(nil), pool[:60]...)
		bi, err := Build(db, v.kind, v.opt)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		nextPool := 60
		for step := 0; step < 12; step++ {
			// Mutate: remove up to 2 random bags, add up to 2 unseen.
			for r := 0; r < rng.Intn(3) && len(db) > 10; r++ {
				victim := rng.Intn(len(db))
				db = append(db[:victim], db[victim+1:]...)
			}
			for a := 0; a < 1+rng.Intn(2) && nextPool < len(pool); a++ {
				db = append(db, pool[nextPool])
				nextPool++
			}
			res, err := bi.Update(db)
			if err != nil {
				t.Fatalf("%s step %d: %v", v.name, step, err)
			}
			if res.Rebuilt {
				t.Fatalf("%s step %d: rebuilt despite high threshold", v.name, step)
			}
			fresh, err := Build(db, v.kind, v.opt)
			if err != nil {
				t.Fatalf("%s step %d: fresh build: %v", v.name, step, err)
			}
			if bi.Bags() != fresh.Bags() || bi.Instances() != fresh.Instances() {
				t.Fatalf("%s step %d: bags/instances %d/%d vs fresh %d/%d", v.name, step,
					bi.Bags(), bi.Instances(), fresh.Bags(), fresh.Instances())
			}
			// Probe with a surviving bag's instance and a random query.
			probes := [][]float64{db[rng.Intn(len(db))].TSs[0].Flat()}
			q := make([]float64, 9)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			probes = append(probes, q)
			c := 8
			if v.exhaustive {
				c = len(db)
			}
			got, _ := bi.Candidates(probes, c)
			want, _ := fresh.Candidates(probes, c)
			if len(got) != len(want) {
				t.Fatalf("%s step %d: %d candidates vs fresh %d", v.name, step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s step %d pos %d: candidate %d vs fresh %d\n got=%v\nwant=%v",
						v.name, step, i, got[i], want[i], got, want)
				}
			}
		}
		m := bi.Maintenance()
		if m.Applies == 0 || m.Inserted == 0 || m.Deleted == 0 {
			t.Fatalf("%s: maintenance counters %+v never moved", v.name, m)
		}
		if m.Rebuilds != 0 {
			t.Fatalf("%s: unexpected rebuilds %d", v.name, m.Rebuilds)
		}
	}
}

// TestBagIndexUpdateRebuildThreshold: churn past RebuildFraction
// triggers a compacting rebuild; the rebuilt index keeps answering
// like a fresh one and the tombstones are gone.
func TestBagIndexUpdateRebuildThreshold(t *testing.T) {
	pool := synthVSsAt(50, 0, 80)
	db := append([]window.VS(nil), pool[:40]...)
	bi, err := Build(db, KindVPTree, Options{RebuildFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Churn well past 10% of the built instance count.
	db = append(db[:10], pool[40:70]...)
	res, err := bi.Update(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Fatalf("heavy churn did not rebuild: %+v", res)
	}
	m := bi.Maintenance()
	if m.Rebuilds != 1 {
		t.Fatalf("rebuilds %d, want 1", m.Rebuilds)
	}
	if m.Tombstones != 0 {
		t.Fatalf("rebuild left %d tombstones", m.Tombstones)
	}
	fresh, err := Build(db, KindVPTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{db[3].TSs[0].Flat()}
	got, _ := bi.Candidates(probes, 8)
	want, _ := fresh.Candidates(probes, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: %d vs %d", i, got[i], want[i])
		}
	}

	// A verified-unchanged database applies as a no-op delta.
	applies := bi.Maintenance().Applies
	res, err = bi.Update(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilt || res.Inserted != 0 || res.Deleted != 0 {
		t.Fatalf("no-op update did work: %+v", res)
	}
	if got := bi.Maintenance().Applies; got != applies+1 {
		t.Fatalf("applies %d, want %d", got, applies+1)
	}
}

// TestBagIndexQuantizedBuild: Build trains the requested quantizer,
// reports its name, training time and a compressed memory footprint.
func TestBagIndexQuantizedBuild(t *testing.T) {
	db := synthVSs(60, 80)
	for _, qk := range []QuantKind{QuantScalar, QuantPQ} {
		for _, kind := range Kinds() {
			bi, err := Build(db, kind, Options{Quant: qk})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, qk, err)
			}
			if bi.QuantName() == "" {
				t.Fatalf("%s/%s: no quantizer name", kind, qk)
			}
			if bi.TrainTime() <= 0 {
				t.Fatalf("%s/%s: no training time", kind, qk)
			}
			m := bi.Memory()
			if m.PointBytes <= 0 || m.FloatBytes <= 0 {
				t.Fatalf("%s/%s: empty memory stats %+v", kind, qk, m)
			}
			if m.PointBytes*4 > m.FloatBytes {
				t.Fatalf("%s/%s: point bytes %d not ≤ 1/4 of float %d", kind, qk, m.PointBytes, m.FloatBytes)
			}
			// Quantized probing still finds the self-probed bag first.
			probe := db[11].TSs[0].Flat()
			cands, _ := bi.Candidates([][]float64{probe}, 8)
			if len(cands) == 0 || cands[0] != 11 {
				t.Fatalf("%s/%s: self-probe candidates %v", kind, qk, cands)
			}
		}
	}
	if _, err := Build(db, KindVPTree, Options{Quant: QuantKind("bad")}); err == nil {
		t.Fatal("unknown quant kind built successfully")
	}
}
