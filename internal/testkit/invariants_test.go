package testkit

// Negative tests: each invariant checker must actually reject the
// violation it exists to catch (a checker that never fails proves
// nothing).

import (
	"bytes"
	"strings"
	"testing"

	"milvideo/internal/sim"
	"milvideo/internal/track"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

func legalTrack() *track.Track {
	return &track.Track{
		ID:        1,
		Confirmed: true,
		Observations: []track.Observation{
			{Frame: 2}, {Frame: 3}, {Frame: 4, Predicted: true}, {Frame: 5},
		},
	}
}

func TestCheckTrackLifecycle(t *testing.T) {
	opt := track.Options{MinHits: 3, MaxMissed: 2}
	if err := CheckTrackLifecycle([]*track.Track{legalTrack()}, 10, opt); err != nil {
		t.Fatalf("legal track rejected: %v", err)
	}
	if err := CheckTrackLifecycle(nil, 10, opt); err != nil {
		t.Fatalf("empty track set rejected: %v", err)
	}
	cases := map[string]func(*track.Track){
		"unconfirmed":     func(tr *track.Track) { tr.Confirmed = false },
		"gap":             func(tr *track.Track) { tr.Observations[2].Frame = 9 },
		"out of range":    func(tr *track.Track) { tr.Observations[3].Frame = 99 },
		"predicted tail":  func(tr *track.Track) { tr.Observations[3].Predicted = true },
		"predicted head":  func(tr *track.Track) { tr.Observations[0].Predicted = true },
		"too few hits":    func(tr *track.Track) { tr.Observations[1].Predicted = true },
		"no observations": func(tr *track.Track) { tr.Observations = nil },
	}
	for name, breakIt := range cases {
		tr := legalTrack()
		breakIt(tr)
		if err := CheckTrackLifecycle([]*track.Track{tr}, 10, opt); err == nil {
			t.Errorf("%s: violation accepted", name)
		}
	}
	long := legalTrack()
	long.Observations = []track.Observation{
		{Frame: 0}, {Frame: 1}, {Frame: 2},
		{Frame: 3, Predicted: true}, {Frame: 4, Predicted: true}, {Frame: 5, Predicted: true},
		{Frame: 6},
	}
	if err := CheckTrackLifecycle([]*track.Track{long}, 10, opt); err == nil {
		t.Error("over-long coast accepted")
	} else if !strings.Contains(err.Error(), "coasted") {
		t.Errorf("wrong coast error: %v", err)
	}
}

func TestCheckRankingPermutation(t *testing.T) {
	vss := []window.VS{{Index: 0}, {Index: 1}, {Index: 2}}
	if err := CheckRankingPermutation([]int{2, 0, 1}, vss); err != nil {
		t.Fatalf("legal permutation rejected: %v", err)
	}
	for name, ranking := range map[string][]int{
		"short":     {2, 0},
		"duplicate": {2, 0, 0},
		"unknown":   {2, 0, 7},
	} {
		if err := CheckRankingPermutation(ranking, vss); err == nil {
			t.Errorf("%s ranking accepted", name)
		}
	}
}

func TestCheckBagConsistency(t *testing.T) {
	cfg := window.Config{SampleRate: 5, WindowSize: 2}
	legal := func() []window.VS {
		return []window.VS{
			{Index: 0, StartFrame: 0, EndFrame: 9, TSs: []window.TS{
				{TrackID: 1, Vectors: [][]float64{{1, 2}, {3, 4}}},
			}},
			{Index: 1, StartFrame: 10, EndFrame: 19},
		}
	}
	if err := CheckBagConsistency(legal(), 20, cfg); err != nil {
		t.Fatalf("legal bags rejected: %v", err)
	}
	cases := map[string]func([]window.VS) []window.VS{
		"dup index":    func(v []window.VS) []window.VS { v[1].Index = 0; return v },
		"bad interval": func(v []window.VS) []window.VS { v[0].StartFrame = 5; v[0].EndFrame = 3; return v },
		"past end":     func(v []window.VS) []window.VS { v[1].EndFrame = 99; return v },
		"short TS":     func(v []window.VS) []window.VS { v[0].TSs[0].Vectors = [][]float64{{1, 2}}; return v },
		"empty vector": func(v []window.VS) []window.VS { v[0].TSs[0].Vectors[1] = nil; return v },
		"ragged dims":  func(v []window.VS) []window.VS { v[0].TSs[0].Vectors[1] = []float64{1}; return v },
	}
	for name, breakIt := range cases {
		if err := CheckBagConsistency(breakIt(legal()), 20, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCheckDBRoundTrip(t *testing.T) {
	db := videodb.New()
	if err := db.Add(&videodb.ClipRecord{
		Name: "a", Frames: 30, FPS: 25, ModelName: "accident",
		Window: window.Config{SampleRate: 5, WindowSize: 3},
		VSs:    []window.VS{{Index: 0, StartFrame: 0, EndFrame: 10}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := CheckDBRoundTrip(db); err != nil {
		t.Fatal(err)
	}
}

func TestSceneSignature(t *testing.T) {
	gen := func(wallCrash int) *sim.Scene {
		s, err := sim.Tunnel(sim.TunnelConfig{Seed: 11, Frames: 120, SpawnEvery: 40, WallCrash: wallCrash})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, err := SceneSignature(gen(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SceneSignature(gen(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical scenes produced different signatures")
	}
	c, err := SceneSignature(gen(0))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different scenes produced equal signatures")
	}
}
