//go:build race

package testkit_test

// raceDetectorOn shrinks the chaos suite's clips under the race
// detector, where each pipeline run is 10–20× slower.
const raceDetectorOn = true
