//go:build !race

package testkit_test

// raceDetectorOn mirrors race_on_test.go; see there.
const raceDetectorOn = false
