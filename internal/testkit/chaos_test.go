// The end-to-end chaos conformance suite: seeded fault schedules
// replayed across ingest, persistence and the query service, with the
// testkit invariants asserted at every boundary. Run under -race by
// scripts/ci.sh's chaos leg; every test here is deterministic — the
// same seeds replay the same faults.
package testkit_test

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"milvideo/internal/core"
	"milvideo/internal/faults"
	"milvideo/internal/server"
	"milvideo/internal/testkit"
	"milvideo/internal/videodb"
)

// raceFrames shrinks clip lengths under the race detector, where each
// pipeline run is an order of magnitude slower.
func chaosFrames() int {
	if raceDetectorOn {
		return 80
	}
	return 120
}

// TestChaosZeroRateIdentity is the suite's inertness gate: with every
// fault rate at zero, ingest output is byte-identical to a pipeline
// with no injector at all, and the query service returns identical
// rankings. Chaos instrumentation must be provably free when unused.
func TestChaosZeroRateIdentity(t *testing.T) {
	scene, err := testkit.TunnelScene(7, chaosFrames())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.ProcessSceneStream(scene, testkit.PipelineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := core.ProcessSceneStream(scene, testkit.PipelineConfig(faults.New(faults.Config{Seed: 99})))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Degraded.Any() {
		t.Fatalf("zero-rate injector reported degradation: %v", zero.Degraded)
	}
	a, err := testkit.Signature(clean.Tracks, clean.VSs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testkit.Signature(zero.Tracks, zero.VSs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("zero-rate injector changed ingest output")
	}

	// Server side: a zero-rate injector must not perturb rankings.
	rankings := func(inj *faults.Injector) ([]int, []int) {
		rec, err := clean.Record("chaos")
		if err != nil {
			t.Fatal(err)
		}
		db := videodb.New()
		if err := db.Add(rec); err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{DB: db, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cl := serverClient(t, srv)
		round, err := cl.Query(context.Background(), server.QueryRequest{Clip: "chaos", TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := testkit.CheckRankingPermutation(round.Ranking, rec.VSs); err != nil {
			t.Fatal(err)
		}
		next, err := cl.Feedback(context.Background(), round.Session, []server.FeedbackLabel{
			{VS: round.TopK[0].VS, Relevant: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return round.Ranking, next.Ranking
	}
	c0, c1 := rankings(nil)
	z0, z1 := rankings(faults.New(faults.Config{Seed: 4242}))
	for i := range c0 {
		if c0[i] != z0[i] {
			t.Fatalf("round 0 pos %d: zero-rate injector changed the ranking", i)
		}
	}
	for i := range c1 {
		if c1[i] != z1[i] {
			t.Fatalf("round 1 pos %d: zero-rate injector changed the ranking", i)
		}
	}
}

// TestChaosIngestConformance replays a seeded fault schedule through
// ingest twice: both runs must degrade identically (determinism) and
// the degraded output must still satisfy every structural invariant.
func TestChaosIngestConformance(t *testing.T) {
	run := func() *core.Clip {
		scene, err := testkit.TunnelScene(11, chaosFrames())
		if err != nil {
			t.Fatal(err)
		}
		cfg := testkit.PipelineConfig(faults.New(testkit.FaultSchedule(21)))
		clip, err := core.ProcessSceneStream(scene, cfg)
		if err != nil {
			t.Fatalf("faulted ingest failed: %v", err)
		}
		if !clip.Degraded.Any() {
			t.Fatal("fault schedule produced no degradation")
		}
		if err := testkit.CheckTrackLifecycle(clip.Tracks, clip.Video.Len(), cfg.Track); err != nil {
			t.Fatal(err)
		}
		if err := testkit.CheckBagConsistency(clip.VSs, clip.Video.Len(), cfg.Window); err != nil {
			t.Fatal(err)
		}
		return clip
	}
	a, b := run(), run()
	if a.Degraded != b.Degraded {
		t.Fatalf("replayed schedule degraded differently: %v vs %v", a.Degraded, b.Degraded)
	}
	sa, err := testkit.Signature(a.Tracks, a.VSs)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := testkit.Signature(b.Tracks, b.VSs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("replayed schedule produced different output")
	}
}

// TestChaosPersistenceConformance runs a degraded batch ingest into a
// catalog, round-trips it through disk, and then damages the file:
// the strict loader must refuse it and the recovering loader must
// salvage only intact, valid records.
func TestChaosPersistenceConformance(t *testing.T) {
	tun, err := testkit.TunnelScene(3, chaosFrames())
	if err != nil {
		t.Fatal(err)
	}
	xing, err := testkit.IntersectionScene(5, chaosFrames())
	if err != nil {
		t.Fatal(err)
	}
	db := videodb.New()
	cfg := testkit.PipelineConfig(faults.New(testkit.FaultSchedule(33)))
	results := core.IngestScenes(db, []core.IngestJob{
		{Name: "tunnel", Scene: tun},
		{Name: "xing", Scene: xing},
	}, core.IngestOptions{Config: cfg})
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("ingest %q: %v", res.Name, res.Err)
		}
	}
	if err := testkit.CheckDBRoundTrip(db); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "catalog.gob")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := videodb.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d clips, want 2", re.Len())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := faults.FlipBits(77, 1, data, 5)
	bad := filepath.Join(t.TempDir(), "damaged.gob")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := videodb.LoadFile(bad); err == nil {
		t.Fatal("strict load accepted a bit-flipped catalog")
	}
	rec, rep, err := videodb.LoadFileRecovering(bad)
	if err != nil {
		// Container-level damage: nothing salvageable, but the failure
		// was clean and typed.
		return
	}
	if rep.Loaded != rec.Len() {
		t.Fatalf("report loaded=%d but catalog holds %d", rep.Loaded, rec.Len())
	}
	for _, n := range rec.Names() {
		c, err := rec.Clip(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("recovered record %q invalid: %v", n, err)
		}
	}
}

// TestChaosServiceConformance drives the query service under injected
// re-rank faults: refused rounds are typed 503s with Retry-After,
// served rounds return legal permutations, and the degradation
// counters account for every injection.
func TestChaosServiceConformance(t *testing.T) {
	scene, err := testkit.TunnelScene(7, chaosFrames())
	if err != nil {
		t.Fatal(err)
	}
	clip, err := core.ProcessSceneStream(scene, testkit.PipelineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := clip.Record("chaos")
	if err != nil {
		t.Fatal(err)
	}
	db := videodb.New()
	if err := db.Add(rec); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		DB:     db,
		Faults: faults.New(faults.Config{Seed: 13, FailRerank: 0.4}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := serverClient(t, srv)

	served, refused := 0, 0
	for i := 0; i < 10; i++ {
		round, err := cl.Query(context.Background(), server.QueryRequest{Clip: "chaos"})
		if err != nil {
			var apiErr *server.APIError
			if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
				t.Fatalf("round %d: refused with %v, want typed 503", i, err)
			}
			refused++
			continue
		}
		served++
		if err := testkit.CheckRankingPermutation(round.Ranking, rec.VSs); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if served == 0 || refused == 0 {
		t.Fatalf("rate 0.4 over 10 rounds: served=%d refused=%d — schedule not mixing", served, refused)
	}
	st := srv.Stats()
	if st.Degraded.InjectedFailures != int64(refused) {
		t.Fatalf("stats count %d injected failures, observed %d", st.Degraded.InjectedFailures, refused)
	}
	// RoundsServed counts only successful rounds; refused queries never
	// increment it.
	if st.RoundsServed != int64(served) {
		t.Fatalf("stats count %d rounds served, observed %d", st.RoundsServed, served)
	}
}
