package testkit_test

import (
	"errors"
	"net/http/httptest"
	"testing"

	"milvideo/internal/server"
)

// serverClient mounts the server behind an httptest listener and
// returns a client against it.
func serverClient(t *testing.T, srv *server.Server) *server.Client {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &server.Client{BaseURL: ts.URL}
}

// asAPIError unwraps err into a *server.APIError.
func asAPIError(err error, target **server.APIError) bool {
	return errors.As(err, target)
}
