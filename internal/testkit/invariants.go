package testkit

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"milvideo/internal/sim"
	"milvideo/internal/track"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// CheckTrackLifecycle verifies the tracker's output contract for a
// clip of `frames` frames under the given options: every returned
// track is confirmed, its observations are frame-contiguous and in
// range, it begins and ends on a real detection (tentative heads and
// coasted tails never survive Flush), it carries at least MinHits
// real observations, and no coasting run exceeds MaxMissed.
func CheckTrackLifecycle(tracks []*track.Track, frames int, opt track.Options) error {
	minHits, maxMissed := opt.MinHits, opt.MaxMissed
	if minHits <= 0 {
		minHits = track.DefaultOptions().MinHits
	}
	if maxMissed <= 0 {
		maxMissed = track.DefaultOptions().MaxMissed
	}
	for _, tr := range tracks {
		if tr == nil {
			return fmt.Errorf("testkit: nil track in output")
		}
		if !tr.Confirmed {
			return fmt.Errorf("testkit: track %d escaped unconfirmed", tr.ID)
		}
		if tr.Len() == 0 {
			return fmt.Errorf("testkit: track %d has no observations", tr.ID)
		}
		real, coast := 0, 0
		for i, o := range tr.Observations {
			if o.Frame != tr.Start()+i {
				return fmt.Errorf("testkit: track %d: observation %d at frame %d, want contiguous %d",
					tr.ID, i, o.Frame, tr.Start()+i)
			}
			if o.Frame < 0 || o.Frame >= frames {
				return fmt.Errorf("testkit: track %d: frame %d outside clip [0,%d)", tr.ID, o.Frame, frames)
			}
			if o.Predicted {
				coast++
				if coast > maxMissed {
					return fmt.Errorf("testkit: track %d: coasted %d consecutive frames (max %d)",
						tr.ID, coast, maxMissed)
				}
			} else {
				real++
				coast = 0
			}
		}
		if tr.Observations[0].Predicted {
			return fmt.Errorf("testkit: track %d starts on a predicted observation", tr.ID)
		}
		if tr.Observations[tr.Len()-1].Predicted {
			return fmt.Errorf("testkit: track %d ends on a predicted observation", tr.ID)
		}
		if real < minHits {
			return fmt.Errorf("testkit: track %d confirmed with %d real observations (MinHits %d)",
				tr.ID, real, minHits)
		}
	}
	return nil
}

// CheckRankingPermutation verifies a served ranking is exactly a
// permutation of the database's VS indices: same length, every index
// present once.
func CheckRankingPermutation(ranking []int, vss []window.VS) error {
	if len(ranking) != len(vss) {
		return fmt.Errorf("testkit: ranking has %d entries for a %d-VS database", len(ranking), len(vss))
	}
	want := make(map[int]bool, len(vss))
	for _, vs := range vss {
		want[vs.Index] = true
	}
	seen := make(map[int]bool, len(ranking))
	for _, idx := range ranking {
		if !want[idx] {
			return fmt.Errorf("testkit: ranking contains unknown VS %d", idx)
		}
		if seen[idx] {
			return fmt.Errorf("testkit: ranking repeats VS %d", idx)
		}
		seen[idx] = true
	}
	return nil
}

// CheckBagConsistency verifies the MIL bag structure of an extracted
// VS database for a clip of `frames` frames: VS indices are unique,
// every frame interval is legal, and each trajectory sequence (an
// instance in the bag) holds exactly WindowSize feature vectors of
// equal, nonzero dimension.
func CheckBagConsistency(vss []window.VS, frames int, cfg window.Config) error {
	winSize := cfg.WindowSize
	if winSize <= 0 {
		winSize = window.DefaultConfig().WindowSize
	}
	seen := make(map[int]bool, len(vss))
	for _, vs := range vss {
		if seen[vs.Index] {
			return fmt.Errorf("testkit: duplicate VS index %d", vs.Index)
		}
		seen[vs.Index] = true
		if vs.StartFrame < 0 || vs.EndFrame >= frames || vs.StartFrame > vs.EndFrame {
			return fmt.Errorf("testkit: VS %d has bad interval [%d,%d] for %d frames",
				vs.Index, vs.StartFrame, vs.EndFrame, frames)
		}
		for t, ts := range vs.TSs {
			if len(ts.Vectors) != winSize {
				return fmt.Errorf("testkit: VS %d TS %d has %d vectors, want WindowSize %d",
					vs.Index, t, len(ts.Vectors), winSize)
			}
			dim := -1
			for v, vec := range ts.Vectors {
				if len(vec) == 0 {
					return fmt.Errorf("testkit: VS %d TS %d vector %d is empty", vs.Index, t, v)
				}
				if dim == -1 {
					dim = len(vec)
				} else if len(vec) != dim {
					return fmt.Errorf("testkit: VS %d TS %d mixes feature dims %d and %d",
						vs.Index, t, dim, len(vec))
				}
			}
		}
	}
	return nil
}

// CheckDBRoundTrip verifies persistence identity: saving the catalog
// and loading it back yields a catalog whose serialization is
// byte-identical to the first (same clips, same record content, same
// order). Byte identity requires deterministic encoding, which holds
// for every pipeline-produced record (gob's map randomization only
// bites Meta maps with two or more keys).
func CheckDBRoundTrip(db *videodb.DB) error {
	var first bytes.Buffer
	if err := db.Save(&first); err != nil {
		return fmt.Errorf("testkit: save: %w", err)
	}
	reloaded := videodb.New()
	if err := reloaded.Load(bytes.NewReader(first.Bytes())); err != nil {
		return fmt.Errorf("testkit: load: %w", err)
	}
	var second bytes.Buffer
	if err := reloaded.Save(&second); err != nil {
		return fmt.Errorf("testkit: re-save: %w", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		return fmt.Errorf("testkit: round trip changed the catalog encoding (%d vs %d bytes)",
			first.Len(), second.Len())
	}
	return nil
}

// Signature gob-encodes a clip's learning-visible output (tracks and
// VS database) into a comparable byte string: two byte-equal
// signatures mean identical observations, confirmations, features and
// windows. It is the byte-identity primitive behind the zero-rate
// inertness tests.
func Signature(tracks []*track.Track, vss []window.VS) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(tracks); err != nil {
		return nil, fmt.Errorf("testkit: signature: %w", err)
	}
	if err := enc.Encode(vss); err != nil {
		return nil, fmt.Errorf("testkit: signature: %w", err)
	}
	return buf.Bytes(), nil
}

// SceneSignature gob-encodes a simulated scene — frames, incident log
// and walls — into a comparable byte string. It is the determinism
// primitive for scenario generators: byte-equal signatures mean the
// same kinematics and the same ground-truth labels, not merely
// equal-looking summaries.
func SceneSignature(s *sim.Scene) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("testkit: scene signature: %w", err)
	}
	return buf.Bytes(), nil
}
