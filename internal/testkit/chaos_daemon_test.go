package testkit_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/ingestd"
	"milvideo/internal/videodb"
)

// daemonFrames shrinks the per-segment length under the race
// detector, like chaosFrames for the ingest leg.
func daemonFrames() int {
	if raceDetectorOn {
		return 40
	}
	return 50
}

// runChaosDaemon drains one finite simulated feed through an ingest
// daemon under a seeded fault schedule and returns the resulting
// catalog, its final snapshot bytes and the daemon's stats.
func runChaosDaemon(t *testing.T, snap string) (*videodb.DB, []byte, ingestd.Stats) {
	t.Helper()
	db := videodb.New()
	d, err := ingestd.New(ingestd.Config{
		DB:     db,
		Source: &ingestd.SimSource{Frames: daemonFrames(), Seed: 17, Limit: 10},
		// Three workers race over the pipeline on purpose: the commit
		// sequence (and therefore the catalog) must not depend on
		// their interleaving.
		Workers:        3,
		RetainSegments: 3,
		CommitRetries:  1,
		RetryBackoff:   time.Microsecond,
		SnapshotPath:   snap,
		SnapshotEvery:  time.Hour, // only Stop's final snapshot matters
		Faults:         faults.New(faults.Config{Seed: 4242, AdmitDrop: 0.25, CommitFail: 0.4}),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d.Wait()
	d.Stop()
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	return db, raw, d.Stats()
}

// TestChaosIngestDaemon is the daemon's conformance gate: the same
// seeded schedule of admission-shedding and transient commit faults,
// replayed over the same simulated feed, must produce byte-identical
// catalog snapshots and identical lifecycle accounting — whatever the
// worker pool's interleaving. Along the way it asserts the daemon's
// loss ledger: every arrived segment is committed, shed, dropped or
// empty, and every committed segment is either live or was evicted.
func TestChaosIngestDaemon(t *testing.T) {
	dir := t.TempDir()
	db1, raw1, s1 := runChaosDaemon(t, filepath.Join(dir, "run1.db"))
	_, raw2, s2 := runChaosDaemon(t, filepath.Join(dir, "run2.db"))

	if s1.Arrived != 10 {
		t.Fatalf("arrived %d, want 10", s1.Arrived)
	}
	if s1.Shed == 0 || s1.CommitRetries == 0 {
		t.Fatalf("fault schedule never fired: %+v", s1)
	}
	if s1.Committed == 0 {
		t.Fatal("every segment was lost — the schedule should let some through")
	}
	if s1.Shed+s1.Committed+s1.CommitsDropped+s1.EmptySegments != s1.Arrived {
		t.Fatalf("segments unaccounted for: %+v", s1)
	}
	if uint64(s1.LiveSegments)+s1.EvictedSegments != s1.Committed {
		t.Fatalf("committed clips lost: %d live + %d evicted != %d committed",
			s1.LiveSegments, s1.EvictedSegments, s1.Committed)
	}
	if db1.Len() != 1+s1.LiveSegments {
		t.Fatalf("catalog holds %d clips, want feed + %d segments", db1.Len(), s1.LiveSegments)
	}
	if s1.Staleness.Count != s1.Committed {
		t.Fatalf("staleness observed %d commits of %d", s1.Staleness.Count, s1.Committed)
	}
	if s1.Staleness.MaxMs <= 0 {
		t.Fatal("staleness histogram recorded nothing")
	}

	// Replay determinism: catalog bytes and every deterministic
	// counter agree between the two runs.
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("replayed catalog diverged: %d vs %d bytes", len(raw1), len(raw2))
	}
	if s1.Shed != s2.Shed || s1.Committed != s2.Committed ||
		s1.CommitsDropped != s2.CommitsDropped || s1.CommitRetries != s2.CommitRetries ||
		s1.Evictions != s2.Evictions || s1.EvictedSegments != s2.EvictedSegments ||
		s1.LiveSegments != s2.LiveSegments || s1.NextSeq != s2.NextSeq {
		t.Fatalf("replayed accounting diverged:\n run1: %+v\n run2: %+v", s1, s2)
	}

	// Recovery: a daemon constructed over the final snapshot resumes
	// the exact feed bookkeeping.
	db3 := videodb.New()
	d3, err := ingestd.New(ingestd.Config{
		DB:           db3,
		Source:       &ingestd.SimSource{Frames: daemonFrames(), Seed: 17, Limit: 1},
		SnapshotPath: filepath.Join(dir, "run1.db"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s3 := d3.Stats()
	if s3.NextSeq != s1.NextSeq || s3.LiveSegments != s1.LiveSegments {
		t.Fatalf("recovered seq %d / %d segments, want %d / %d",
			s3.NextSeq, s3.LiveSegments, s1.NextSeq, s1.LiveSegments)
	}
}
