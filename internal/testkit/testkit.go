// Package testkit provides the shared scaffolding of the chaos and
// conformance test suites: deterministic scenario builders (small,
// fast synthetic scenes keyed only by an explicit seed) and invariant
// checkers that express the system's structural guarantees — track
// lifecycle legality, ranking-is-a-permutation, bag/instance
// consistency, and database round-trip identity — as plain functions
// returning errors, so unit tests, fuzz targets and the end-to-end
// chaos suite can all assert them.
package testkit

import (
	"fmt"
	"time"

	"milvideo/internal/core"
	"milvideo/internal/faults"
	"milvideo/internal/sim"
)

// TunnelScene builds a small deterministic tunnel scene: one wall
// crash, sparse traffic, `frames` frames at 25 FPS. The same seed
// always yields the identical scene.
func TunnelScene(seed int64, frames int) (*sim.Scene, error) {
	s, err := sim.Tunnel(sim.TunnelConfig{
		Frames: frames, Seed: seed, SpawnEvery: 50, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		return nil, fmt.Errorf("testkit: tunnel scene: %w", err)
	}
	return s, nil
}

// IntersectionScene builds a small deterministic intersection scene
// with one collision.
func IntersectionScene(seed int64, frames int) (*sim.Scene, error) {
	s, err := sim.Intersection(sim.IntersectionConfig{
		Frames: frames, Seed: seed, SpawnEvery: 40, Collisions: 1, FPS: 25,
	})
	if err != nil {
		return nil, fmt.Errorf("testkit: intersection scene: %w", err)
	}
	return s, nil
}

// PipelineConfig returns the default processing configuration with a
// near-zero retry backoff (so exhausted-retry chaos runs stay fast)
// and the given injector attached. Pass nil for a clean pipeline.
func PipelineConfig(inj *faults.Injector) core.Config {
	cfg := core.DefaultConfig()
	cfg.Faults = inj
	cfg.RetryBackoff = 10 * time.Microsecond
	return cfg
}

// FaultSchedule is the chaos suite's canonical moderate-rate fault
// configuration: every ingest fault class enabled at a rate that
// degrades a ~100-frame clip without destroying it. Determinism note:
// the schedule is entirely a function of the seed, so replaying it
// reproduces the identical degradation.
func FaultSchedule(seed int64) faults.Config {
	return faults.Config{
		Seed:          seed,
		FrameDrop:     0.06,
		SaltPepper:    0.08,
		Blackout:      0.02,
		SegTransient:  0.1,
		StageDelay:    0.03,
		StageDelayDur: 50 * time.Microsecond,
	}
}
