package shard

import (
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// Part is one shard's slice of a clip's VS database: the VSs it owns
// and their positions in the full database (parallel slices, both in
// database order).
type Part struct {
	VSs []window.VS
	Pos []int
}

// PartitionVS splits db into r.Shards() parts by ring ownership of
// the (clip, VS index) keys. Every VS lands in exactly one part, and
// parts preserve database order, so each part is a stable
// sub-database a BagIndex can be built over — and, because a part's
// backing array only changes when the partition is recomputed,
// incrementally maintained across generations.
func PartitionVS(r *Ring, clip string, db []window.VS) []Part {
	parts := make([]Part, r.Shards())
	for pos, vs := range db {
		s := r.OwnerVS(clip, vs.Index)
		parts[s].VSs = append(parts[s].VSs, vs)
		parts[s].Pos = append(parts[s].Pos, pos)
	}
	return parts
}

// PartitionRecord filters rec down to the VSs shard s owns under the
// ring: the record a shard worker stores, indexes and persists (the
// v2 checksummed snapshot format applies to it unchanged, so
// per-shard recovery is free). Returns nil when the shard owns none
// of the clip's VSs — an empty record is not a valid catalog entry,
// so workers skip the clip instead of storing a husk. Incidents and
// annotations travel whole: they are per-clip metadata, not per-VS
// content, and the coordinator's exact re-rank never reads them from
// workers anyway.
func PartitionRecord(r *Ring, rec *videodb.ClipRecord, s int) *videodb.ClipRecord {
	if rec == nil {
		return nil
	}
	var vss []window.VS
	for _, vs := range rec.VSs {
		if r.OwnerVS(rec.Name, vs.Index) == s {
			vss = append(vss, vs)
		}
	}
	if len(vss) == 0 {
		return nil
	}
	out := *rec
	out.VSs = vss
	return &out
}
