package shard

import (
	"math/rand"
	"testing"

	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// shardSynthDB builds a seeded synthetic VS database: mostly smooth
// traffic, a few accident-like spikes, 1–3 TSs per bag (the same
// shape the retrieval candidate tests use).
func shardSynthDB(seed int64, n int) []window.VS {
	rng := rand.New(rand.NewSource(seed))
	db := make([]window.VS, n)
	for i := range db {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		spike := i%7 == 0
		for k := 0; k < 1+rng.Intn(3); k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				v := []float64{rng.Float64() * 0.1, rng.Float64() * 0.3, rng.Float64() * 0.1}
				if spike && k == 0 && p == 1 {
					v = []float64{0.4 + rng.Float64()*0.1, 2.5 + rng.Float64(), 1 + rng.Float64()*0.3}
				}
				ts.Vectors = append(ts.Vectors, v)
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db[i] = vs
	}
	return db
}

// TestPartitionVSCovers: every database position lands in exactly
// one part, parts preserve database order, and the parallel Pos
// slice points back correctly.
func TestPartitionVSCovers(t *testing.T) {
	db := shardSynthDB(3, 90)
	for _, s := range []int{1, 2, 3, 5} {
		r := NewRing(s)
		parts := PartitionVS(r, "clip", db)
		if len(parts) != s {
			t.Fatalf("S=%d: got %d parts", s, len(parts))
		}
		seen := make([]bool, len(db))
		for _, p := range parts {
			if len(p.VSs) != len(p.Pos) {
				t.Fatalf("S=%d: VSs/Pos length mismatch", s)
			}
			last := -1
			for i, pos := range p.Pos {
				if seen[pos] {
					t.Fatalf("S=%d: position %d in two parts", s, pos)
				}
				seen[pos] = true
				if pos <= last {
					t.Fatalf("S=%d: part out of database order", s)
				}
				last = pos
				if p.VSs[i].Index != db[pos].Index {
					t.Fatalf("S=%d: part VS %d mismatches db position %d", s, p.VSs[i].Index, pos)
				}
			}
		}
		for pos, ok := range seen {
			if !ok {
				t.Fatalf("S=%d: position %d unassigned", s, pos)
			}
		}
	}
}

// TestPartitionRecord: the union of the per-shard records is the
// original VS set, each record's VSs agree with ring ownership, and
// a shard owning nothing gets nil.
func TestPartitionRecord(t *testing.T) {
	db := shardSynthDB(4, 60)
	rec := &videodb.ClipRecord{Name: "clip", Frames: 900, FPS: 25, ModelName: "accident", VSs: db}
	const s = 3
	r := NewRing(s)
	total := 0
	for sh := 0; sh < s; sh++ {
		prec := PartitionRecord(r, rec, sh)
		if prec == nil {
			continue
		}
		if prec.Name != rec.Name || prec.Frames != rec.Frames {
			t.Fatalf("shard %d: clip metadata not carried", sh)
		}
		for _, vs := range prec.VSs {
			if r.OwnerVS(rec.Name, vs.Index) != sh {
				t.Fatalf("shard %d: does not own VS %d", sh, vs.Index)
			}
		}
		total += len(prec.VSs)
	}
	if total != len(db) {
		t.Fatalf("partitions cover %d of %d VSs", total, len(db))
	}
	// A ring with many shards and a tiny record leaves some shards
	// empty → nil, not an empty record.
	tiny := &videodb.ClipRecord{Name: "tiny", VSs: db[:1]}
	big := NewRing(16)
	owner := big.OwnerVS("tiny", db[0].Index)
	for sh := 0; sh < 16; sh++ {
		prec := PartitionRecord(big, tiny, sh)
		if sh == owner && prec == nil {
			t.Fatalf("owning shard %d got nil", sh)
		}
		if sh != owner && prec != nil {
			t.Fatalf("non-owning shard %d got a record", sh)
		}
	}
	if PartitionRecord(r, nil, 0) != nil {
		t.Fatal("nil record should partition to nil")
	}
}
