// Package shard partitions a VS catalog across S shards by
// consistent hashing and serves queries over the partition with a
// scatter–gather engine: every shard probes its own candidate index,
// the per-shard candidate sets merge by distance into a global top-C,
// and the unchanged exact MIL re-rank runs on the union — the PR 4
// C=N-exact contract, preserved across any shard count.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the virtual-node count per shard: enough points
// that each shard's share of the keyspace concentrates near 1/S,
// while NewRing stays trivially cheap (S·64 hashes, one sort).
const ringReplicas = 64

// Ring is a consistent-hash ring over S shards. It is a pure
// function of S, so every process that builds NewRing(S) —
// coordinator, each worker, tests — agrees on ownership with no
// coordination. Growing S to S+1 moves only the keys the new shard's
// points win (~1/(S+1) of the space); everything else stays put,
// which is what makes resharding incremental rather than a full
// reshuffle.
type Ring struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	h uint64
	s int
}

// NewRing builds the ring for the given shard count (minimum 1).
func NewRing(shards int) *Ring {
	if shards < 1 {
		shards = 1
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*ringReplicas)}
	for s := 0; s < shards; s++ {
		for rep := 0; rep < ringReplicas; rep++ {
			key := "shard-" + strconv.Itoa(s) + "#" + strconv.Itoa(rep)
			r.points = append(r.points, ringPoint{h: hash64(key), s: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].s < r.points[b].s
	})
	return r
}

// Shards reports the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning key: the shard of the first ring
// point at or clockwise after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].s
}

// OwnerVS returns the shard owning one VS of one clip. Hashing the
// (clip, VS index) pair — not the clip name alone — spreads a single
// clip's bags across every shard, so one session's scatter engages
// the whole cluster instead of just the shard that owns its clip.
func (r *Ring) OwnerVS(clip string, vsIndex int) int {
	return r.Owner(clip + "#" + strconv.Itoa(vsIndex))
}

func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a of short,
// near-identical keys ("shard-0#1", "shard-0#2", …) leaves the low
// bits correlated, which skews ring shares badly at 64 replicas; the
// avalanche pass restores a near-uniform point spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
