package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"milvideo/internal/index"
	"milvideo/internal/mil"
	"milvideo/internal/retrieval"
	"milvideo/internal/window"
)

// Hit is one shard's answer for one bag: the bag's global VS index
// and the minimum squared distance from any probe to any of its
// instances. Dist < 0 encodes +Inf — the bag is present on the shard
// but no probe reached it (JSON cannot carry +Inf, so the wire uses
// the sentinel). Such completion hits exist so that when the
// per-shard budget covers a whole partition the shard answers with
// every bag it owns, which is what lets a C ≥ N scatter reassemble
// the entire database and reproduce the unsharded ranking.
type Hit struct {
	VS   int     `json:"vs"`
	Dist float64 `json:"dist"`
}

// Prober answers a scatter probe for one shard: the shard's top-c
// candidate bags by distance. Probers must be safe for concurrent
// use. LocalProber serves an in-process partition; the server's HTTP
// prober forwards to a shard worker's /v1/scatter endpoint.
type Prober interface {
	Probe(ctx context.Context, probes [][]float64, c int) ([]Hit, index.ProbeStats, error)
}

// BoundedProber is the optional fast path of the scout-and-carry
// scatter. ProbeBounded is Probe plus per-probe pruning radii in
// (bounds; nil = unbounded) and per-probe achieved k-th-neighbor
// distances out — the bounds a scout shard exports and the carried
// shards prune by. A prober that cannot honor bounds (the HTTP
// prober) simply doesn't implement this; the engine falls back to
// Probe and the scatter stays a plain fan-out.
type BoundedProber interface {
	ProbeBounded(ctx context.Context, probes [][]float64, c int, bounds []float64) ([]Hit, []float64, index.ProbeStats, error)
}

// LocalProber probes an in-process partition: the partition's VSs
// and a BagIndex built over exactly them, in the same order.
type LocalProber struct {
	VSs   []window.VS
	Index *index.BagIndex
}

// Probe implements Prober.
func (p LocalProber) Probe(ctx context.Context, probes [][]float64, c int) ([]Hit, index.ProbeStats, error) {
	hits, _, stats, err := p.ProbeBounded(ctx, probes, c, nil)
	return hits, stats, err
}

// ProbeBounded implements BoundedProber.
func (p LocalProber) ProbeBounded(ctx context.Context, probes [][]float64, c int, bounds []float64) ([]Hit, []float64, index.ProbeStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, index.ProbeStats{}, err
	}
	return ProbeLocalBound(p.VSs, p.Index, probes, c, bounds)
}

// ProbeLocal answers one shard's scatter probe from its partition
// and index: the local top-c candidate bags as (VS index, distance)
// hits. When c covers the whole partition, every unprobed bag is
// appended as a completion hit (Dist = -1, i.e. +Inf) — the
// exactness rule above.
func ProbeLocal(vss []window.VS, bi *index.BagIndex, probes [][]float64, c int) ([]Hit, index.ProbeStats, error) {
	hits, _, stats, err := ProbeLocalBound(vss, bi, probes, c, nil)
	return hits, stats, err
}

// ProbeLocalBound is ProbeLocal with carried pruning bounds in and
// scout bounds out (see BoundedProber). The completion rule is
// unchanged and is what keeps carried pruning off the exactness
// path: when c covers the partition, every bag the bounded probe
// skipped still goes out as a completion hit, so a C ≥ N scatter
// reassembles the whole database no matter how tight the bounds were.
func ProbeLocalBound(vss []window.VS, bi *index.BagIndex, probes [][]float64, c int, bounds []float64) ([]Hit, []float64, index.ProbeStats, error) {
	if len(vss) == 0 || c <= 0 {
		return nil, nil, index.ProbeStats{}, nil
	}
	if bi == nil {
		return nil, nil, index.ProbeStats{}, fmt.Errorf("shard: nil index for a %d-bag partition", len(vss))
	}
	if bi.Bags() != len(vss) {
		return nil, nil, index.ProbeStats{}, fmt.Errorf("shard: index covers %d bags, partition holds %d (stale index?)",
			bi.Bags(), len(vss))
	}
	hits, kth, stats := bi.CandidatesDistBounded(probes, c, bounds)
	out := make([]Hit, 0, len(hits))
	for _, h := range hits {
		out = append(out, Hit{VS: vss[h.Pos].Index, Dist: h.Dist})
	}
	if c >= len(vss) && len(out) < len(vss) {
		probed := make([]bool, len(vss))
		for _, h := range hits {
			probed[h.Pos] = true
		}
		for pos := range vss {
			if !probed[pos] {
				out = append(out, Hit{VS: vss[pos].Index, Dist: -1})
			}
		}
	}
	return out, kth, stats, nil
}

// PositiveProbes gathers the flattened instance vectors of every
// positively labeled bag — the probe set the accumulated relevant
// feedback defines, the same rule retrieval.CandidateEngine applies.
func PositiveProbes(db []window.VS, labels map[int]mil.Label) [][]float64 {
	var probes [][]float64
	for _, vs := range db {
		if labels[vs.Index] != mil.Positive {
			continue
		}
		for _, ts := range vs.TSs {
			probes = append(probes, ts.Flat())
		}
	}
	return probes
}

// Stats accumulates a sharded engine's work across rounds
// (atomically; one instance can be shared by every session of a
// server and read while rounds run).
type Stats struct {
	// ScatterRounds counts rounds served through the scatter–gather
	// path; FullRounds counts delegations to the inner engine (no
	// positive probes yet, no shards, or C disabled).
	ScatterRounds atomic.Int64
	FullRounds    atomic.Int64
	// PartialRounds counts scattered rounds in which at least one
	// shard failed or timed out and the merge continued over the
	// survivors; AllFailedRounds counts rounds every shard was lost
	// and the engine fell back to an exact full rank.
	PartialRounds   atomic.Int64
	AllFailedRounds atomic.Int64
	// ShardTimeouts counts per-shard probes lost to their deadline;
	// ShardErrors counts probes lost to any other failure.
	ShardTimeouts atomic.Int64
	ShardErrors   atomic.Int64
	// InjectedStalls and InjectedFailures count chaos-hook firings.
	InjectedStalls   atomic.Int64
	InjectedFailures atomic.Int64
	// BoundedShardProbes counts carried-wave shard probes that ran
	// with a scout bound (the pruned fast path).
	BoundedShardProbes atomic.Int64
	// Probes and DistEvals total the surviving shards' index work;
	// MergedCandidates totals the sizes of the merged candidate sets.
	Probes           atomic.Int64
	DistEvals        atomic.Int64
	MergedCandidates atomic.Int64
	// ScatterNs and MergeNs split a round's pre-re-rank wall time:
	// the bounded parallel probe fan-out vs the distance merge.
	ScatterNs atomic.Int64
	MergeNs   atomic.Int64
	// SeededRounds counts scattered rounds whose probes came from a
	// ProbeSeeder (no positive feedback yet) rather than labels.
	SeededRounds atomic.Int64
}

// Engine fans a query's positive-instance probes across shards,
// merges the per-shard candidate sets by distance into a global
// top-C, and re-ranks the union (plus every labeled bag) with the
// unchanged exact engine. C ≥ len(db) provably reproduces the
// unsharded exact ranking: the full budget goes to every shard, each
// shard then returns its complete partition (real distances for
// probed bags, completion hits for the rest), the merged union is
// the whole database, and the inner engine ranks all of it — the
// same C=N contract retrieval.CandidateEngine pins, across shards.
// Below that, each shard is asked only for its expected share of the
// global top C plus slack (see perShardC), and the scatter runs
// scout-and-carry: shard 0 probes first and its per-probe k-th
// distances become initial pruning radii for every other shard,
// which is where the speedup lives — the carried wave's searches are
// neighborhood-ball-sized instead of catalog-sized. A shard that
// times out or fails is dropped from the round: partial results with
// counters, never a failed query (a lost scout costs only the
// pruning). Only when every shard is lost does the engine fall back
// to an exact full rank.
type Engine struct {
	// Inner is the exact ranker re-ranking the merged union.
	Inner retrieval.Engine
	// Probers answer per-shard probes; Probers[i] is shard i.
	Probers []Prober
	// C caps the merged global candidate set (same contract as
	// retrieval.CandidateEngine.C; <= 0 disables the scatter path).
	C int
	// Timeout bounds each shard's probe (0 = only the round context).
	Timeout time.Duration
	// Workers bounds concurrent shard probes (0 = all shards at once).
	Workers int
	// Seeder, when non-nil, supplies probes for rounds with no
	// positive feedback (e.g. a predicate query's best-scoring
	// instances), so the scatter path covers round 0 too. Left nil,
	// Inner itself is consulted when it implements
	// retrieval.ProbeSeeder. C ≥ len(db) identity is unaffected: a
	// seeded full-budget scatter still reassembles every partition
	// through completion hits.
	Seeder retrieval.ProbeSeeder
	// Stats, when non-nil, accumulates scatter counters.
	Stats *Stats
	// Fault, when non-nil, is consulted per (shard, round): a
	// positive stall delays that shard's probe, a non-nil error fails
	// it — the deterministic chaos hook (faults.Injector.ShardFault).
	Fault func(shard int, seq uint64) (stall time.Duration, err error)

	// seq numbers scattered rounds for the fault hook.
	seq atomic.Uint64
}

// Name implements retrieval.Engine.
func (e *Engine) Name() string {
	inner := "?"
	if e.Inner != nil {
		inner = e.Inner.Name()
	}
	return fmt.Sprintf("sharded(S=%d,C=%d)/%s", len(e.Probers), e.C, inner)
}

// Rank implements retrieval.Engine.
func (e *Engine) Rank(db []window.VS, labels map[int]mil.Label) ([]int, error) {
	return e.RankCtx(context.Background(), db, labels)
}

type shardAnswer struct {
	hits  []Hit
	kth   []float64 // per-probe achieved k-th distances (scout bounds)
	stats index.ProbeStats
	err   error
}

// RankCtx implements retrieval.ContextEngine.
func (e *Engine) RankCtx(ctx context.Context, db []window.VS, labels map[int]mil.Label) ([]int, error) {
	if e.Inner == nil {
		return nil, retrieval.ErrNilEngine
	}
	if len(e.Probers) == 0 || e.C <= 0 {
		return e.full(db, labels)
	}
	probes := PositiveProbes(db, labels)
	if len(probes) == 0 {
		// No feedback yet: let the query engine seed probes, if it can.
		seeder := e.Seeder
		if seeder == nil {
			seeder, _ = e.Inner.(retrieval.ProbeSeeder)
		}
		if seeder != nil {
			if probes = seeder.SeedProbes(db); len(probes) > 0 && e.Stats != nil {
				e.Stats.SeededRounds.Add(1)
			}
		}
	}
	if len(probes) == 0 {
		return e.full(db, labels)
	}
	seq := e.seq.Add(1) - 1
	cs := e.perShardC(len(db))

	// Scatter, scout-and-carry: shard 0 probes first with the full
	// per-shard budget and exports its per-probe k-th-neighbor
	// distances. With bags spread uniformly by the ring, shard 0's
	// cs-th distance sits at the same quantile of its partition as the
	// global C-th does of the whole catalog, so it is a sound — and
	// tight — initial pruning radius for every other shard: the
	// carried wave's searches skip the loose-tau descent that
	// dominates an unbounded probe and visit only the true
	// neighborhood ball. The carried shards then fan out under the
	// worker bound, each probe behind its own deadline. A lost scout
	// only costs the optimization: the carried wave runs unbounded.
	answers := make([]shardAnswer, len(e.Probers))
	start := time.Now()
	answers[0] = e.probeShard(ctx, 0, seq, probes, cs, nil)
	var bounds []float64
	if answers[0].err == nil {
		bounds = answers[0].kth
	}
	workers := e.Workers
	if workers <= 0 || workers > len(e.Probers) {
		workers = len(e.Probers)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 1; i < len(e.Probers); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			answers[i] = e.probeShard(ctx, i, seq, probes, cs, bounds)
		}(i)
	}
	wg.Wait()
	scatter := time.Since(start)

	// Gather: keep each bag's best distance over shards, order by
	// (distance, database position) — deterministic whatever the
	// goroutine schedule, since each VS lives on exactly one shard —
	// and cut to the global top C.
	start = time.Now()
	pos := make(map[int]int, len(db))
	for p, vs := range db {
		pos[vs.Index] = p
	}
	best := make(map[int]float64, 2*cs)
	failed := 0
	var pstats index.ProbeStats
	for _, a := range answers {
		if a.err != nil {
			failed++
			continue
		}
		pstats.Probes += a.stats.Probes
		pstats.DistEvals += a.stats.DistEvals
		for _, h := range a.hits {
			p, ok := pos[h.VS]
			if !ok {
				// A worker whose catalog view ran ahead of (or behind)
				// this database may answer with bags it no longer
				// holds; they cannot be ranked here and are dropped —
				// degradation, not corruption.
				continue
			}
			d := h.Dist
			if d < 0 {
				d = math.Inf(1)
			}
			if cur, ok := best[p]; !ok || d < cur {
				best[p] = d
			}
		}
	}
	if failed == len(e.Probers) {
		// Every shard lost: degrade to the exact full rank rather
		// than failing the query.
		if e.Stats != nil {
			e.Stats.AllFailedRounds.Add(1)
		}
		return e.full(db, labels)
	}
	order := make([]int, 0, len(best))
	for p := range best {
		order = append(order, p)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := best[order[a]], best[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	if e.C < len(order) {
		order = order[:e.C]
	}
	merge := time.Since(start)

	if e.Stats != nil {
		e.Stats.ScatterRounds.Add(1)
		if failed > 0 {
			e.Stats.PartialRounds.Add(1)
		}
		e.Stats.Probes.Add(int64(pstats.Probes))
		e.Stats.DistEvals.Add(int64(pstats.DistEvals))
		e.Stats.MergedCandidates.Add(int64(len(order)))
		e.Stats.ScatterNs.Add(int64(scatter))
		e.Stats.MergeNs.Add(int64(merge))
	}
	out, _, err := retrieval.RerankUnion(e.Inner, db, labels, order)
	return out, err
}

// perShardC is the candidate budget requested from each shard. When
// C covers the database (or there is a single shard) the full budget
// goes out — every shard then returns its complete partition, the
// C=N exactness path. Below that, a shard only needs its share of
// the global top C plus enough slack to absorb hash imbalance: with
// bags spread uniformly by the ring, a shard's share of the true top
// C concentrates around C/S with deviation O(√C), so C/S plus
// max(C/16, 64) covers it overwhelmingly (at C = 1500, S = 2 the
// slack is ~5 standard deviations of the binomial share) — and the
// recall gates (the
// shard property tests and the ci.sh index smoke) hold the claim to
// measurement rather than trust. The budget's other role is setting
// the scout's probe depth (k = cs+16 per probe), and through it the
// carried bound's quantile: shard 0's cs-th distance over an n/S-bag
// partition estimates the same quantile as the global C-th over n,
// which is exactly what makes it a sound pruning radius for the
// carried wave.
func (e *Engine) perShardC(n int) int {
	c := e.C
	if c >= n || len(e.Probers) <= 1 {
		return c
	}
	slack := c / 16
	if slack < 64 {
		slack = 64
	}
	cs := c/len(e.Probers) + slack
	if cs > c {
		cs = c
	}
	return cs
}

// probeShard runs one shard's probe behind its deadline and the
// chaos hook, classifying any loss into the timeout/error counters.
// bounds, when non-nil, are the scout's carried pruning radii; they
// reach the shard only through the BoundedProber fast path.
func (e *Engine) probeShard(ctx context.Context, shard int, seq uint64, probes [][]float64, c int, bounds []float64) shardAnswer {
	sctx := ctx
	cancel := func() {}
	if e.Timeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, e.Timeout)
	}
	defer cancel()
	if e.Fault != nil {
		stall, ferr := e.Fault(shard, seq)
		if stall > 0 {
			if e.Stats != nil {
				e.Stats.InjectedStalls.Add(1)
			}
			t := time.NewTimer(stall)
			select {
			case <-t.C:
			case <-sctx.Done():
				t.Stop()
				return shardAnswer{err: e.lost(sctx.Err())}
			}
			t.Stop()
		}
		if ferr != nil {
			if e.Stats != nil {
				e.Stats.InjectedFailures.Add(1)
			}
			return shardAnswer{err: e.lost(ferr)}
		}
	}
	if bp, ok := e.Probers[shard].(BoundedProber); ok {
		if bounds != nil && e.Stats != nil {
			e.Stats.BoundedShardProbes.Add(1)
		}
		hits, kth, stats, err := bp.ProbeBounded(sctx, probes, c, bounds)
		if err != nil {
			return shardAnswer{err: e.lost(err)}
		}
		return shardAnswer{hits: hits, kth: kth, stats: stats}
	}
	hits, stats, err := e.Probers[shard].Probe(sctx, probes, c)
	if err != nil {
		return shardAnswer{err: e.lost(err)}
	}
	return shardAnswer{hits: hits, stats: stats}
}

// lost counts a lost shard probe and passes the error through.
func (e *Engine) lost(err error) error {
	if e.Stats != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			e.Stats.ShardTimeouts.Add(1)
		} else {
			e.Stats.ShardErrors.Add(1)
		}
	}
	return err
}

// full delegates to the wrapped engine, counting the round.
func (e *Engine) full(db []window.VS, labels map[int]mil.Label) ([]int, error) {
	if e.Stats != nil {
		e.Stats.FullRounds.Add(1)
	}
	return e.Inner.Rank(db, labels)
}
