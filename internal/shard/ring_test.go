package shard

import (
	"strconv"
	"testing"
)

// TestRingDeterminism: two independently built rings agree on every
// key — the property workers and coordinator rely on to partition
// without coordination.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for i := 0; i < 2000; i++ {
		key := "clip#" + strconv.Itoa(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingOwnerRange: ownership always lands in [0, S).
func TestRingOwnerRange(t *testing.T) {
	for _, s := range []int{1, 2, 3, 5, 8} {
		r := NewRing(s)
		if r.Shards() != s {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), s)
		}
		for i := 0; i < 500; i++ {
			if o := r.OwnerVS("clip", i); o < 0 || o >= s {
				t.Fatalf("S=%d: owner %d out of range for vs %d", s, o, i)
			}
		}
	}
}

// TestRingBalance: over many VS keys, no shard owns a wildly
// disproportionate share (virtual nodes keep shares near 1/S).
func TestRingBalance(t *testing.T) {
	const keys = 8000
	for _, s := range []int{2, 4, 8} {
		r := NewRing(s)
		counts := make([]int, s)
		for i := 0; i < keys; i++ {
			counts[r.OwnerVS("clip-"+strconv.Itoa(i%13), i)]++
		}
		want := keys / s
		for sh, c := range counts {
			if c < want/3 || c > want*3 {
				t.Fatalf("S=%d: shard %d owns %d of %d keys (expected near %d)", s, sh, c, keys, want)
			}
		}
	}
}

// TestRingConsistency: growing S to S+1 must move only a bounded
// fraction of keys — the consistent-hashing property that makes
// resharding incremental.
func TestRingConsistency(t *testing.T) {
	const keys = 6000
	for _, s := range []int{2, 4, 7} {
		a, b := NewRing(s), NewRing(s+1)
		moved := 0
		for i := 0; i < keys; i++ {
			key := "clip#" + strconv.Itoa(i)
			oa, ob := a.Owner(key), b.Owner(key)
			if oa != ob {
				if ob != s {
					t.Fatalf("S=%d→%d: key %q moved %d→%d, not to the new shard", s, s+1, key, oa, ob)
				}
				moved++
			}
		}
		// The new shard should win ~1/(S+1); allow generous slack.
		if frac := float64(moved) / keys; frac > 2.5/float64(s+1) {
			t.Fatalf("S=%d→%d moved %.1f%% of keys (expected ~%.1f%%)", s, s+1, frac*100, 100/float64(s+1))
		}
	}
}
