package shard

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"milvideo/internal/index"
	"milvideo/internal/mil"
	"milvideo/internal/retrieval"
	"milvideo/internal/rf"
	"milvideo/internal/window"
)

// shardLabels labels the first few spike bags positive and a few
// others negative, as accumulated feedback would.
func shardLabels(db []window.VS, nPos, nNeg int) map[int]mil.Label {
	labels := map[int]mil.Label{}
	for _, vs := range db {
		if vs.Index%7 == 0 && nPos > 0 {
			labels[vs.Index] = mil.Positive
			nPos--
		} else if vs.Index%7 == 3 && nNeg > 0 {
			labels[vs.Index] = mil.Negative
			nNeg--
		}
	}
	return labels
}

func shardEngines() []retrieval.Engine {
	return []retrieval.Engine{
		retrieval.MILEngine{Opt: mil.DefaultOptions()},
		retrieval.WeightedEngine{Norm: rf.NormPercentage},
		retrieval.RocchioEngine{},
	}
}

// buildProbers partitions db across s shards and builds one index
// per part.
func buildProbers(t *testing.T, db []window.VS, s int, kind index.Kind, opt index.Options) []Prober {
	t.Helper()
	parts := PartitionVS(NewRing(s), "clip", db)
	probers := make([]Prober, len(parts))
	for i, p := range parts {
		bi, err := index.Build(p.VSs, kind, opt)
		if err != nil {
			t.Fatal(err)
		}
		probers[i] = LocalProber{VSs: p.VSs, Index: bi}
	}
	return probers
}

// TestShardedFullCIdentity is the merge-contract property test: with
// C = N, scatter–gather over any shard count S ∈ {1,2,3,5} must be
// permutation-identical to the unsharded exact ranking — for all
// three engines, both index kinds, and several label mixes. The
// identity is proven through the real scatter path (every shard
// returns its full partition, completion hits included), not by a
// delegation shortcut.
func TestShardedFullCIdentity(t *testing.T) {
	db := shardSynthDB(1, 70)
	labelSets := []map[int]mil.Label{
		shardLabels(db, 3, 0),
		shardLabels(db, 4, 4),
		shardLabels(db, 100, 8),
	}
	for _, kind := range index.Kinds() {
		for _, s := range []int{1, 2, 3, 5} {
			probers := buildProbers(t, db, s, kind, index.Options{})
			for _, inner := range shardEngines() {
				eng := &Engine{Inner: inner, Probers: probers, C: len(db)}
				for li, labels := range labelSets {
					want, err := inner.Rank(db, labels)
					if err != nil {
						t.Fatal(err)
					}
					got, err := eng.RankCtx(context.Background(), db, labels)
					if err != nil {
						t.Fatalf("kind=%s S=%d engine=%s labels=%d: %v", kind, s, inner.Name(), li, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("kind=%s S=%d engine=%s labels=%d: sharded C=N ranking diverges\ngot  %v\nwant %v",
							kind, s, inner.Name(), li, got, want)
					}
				}
				// The identity must flow through the scatter path, not a
				// full-rank delegation.
				if eng.Stats != nil {
					t.Fatal("unexpected stats")
				}
			}
		}
	}
}

// TestShardedScatterPathUsed pins that C=N rounds with positive
// labels actually scatter (ScatterRounds, not FullRounds).
func TestShardedScatterPathUsed(t *testing.T) {
	db := shardSynthDB(2, 56)
	probers := buildProbers(t, db, 3, index.KindVPTree, index.Options{})
	st := &Stats{}
	eng := &Engine{Inner: retrieval.RocchioEngine{}, Probers: probers, C: len(db), Stats: st}
	if _, err := eng.Rank(db, shardLabels(db, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if st.ScatterRounds.Load() != 1 || st.FullRounds.Load() != 0 {
		t.Fatalf("scatter=%d full=%d, want 1/0", st.ScatterRounds.Load(), st.FullRounds.Load())
	}
	if st.MergedCandidates.Load() != int64(len(db)) {
		t.Fatalf("C=N merged %d candidates, want %d", st.MergedCandidates.Load(), len(db))
	}
	// Round 0 (no positives) must delegate to the inner engine.
	if _, err := eng.Rank(db, map[int]mil.Label{}); err != nil {
		t.Fatal(err)
	}
	if st.FullRounds.Load() != 1 {
		t.Fatalf("round 0 did not delegate: full=%d", st.FullRounds.Load())
	}
}

// demoMixDB mirrors the server demo catalog's feature distribution
// (accident-spike relevant bags, deceleration-only distractors,
// smooth normal traffic — the mix every recall gate in this repo is
// calibrated on). Relevance ground truth is positional: the first
// nRel bags are the accidents.
func demoMixDB(seed int64, nRel, nDis, nNorm int) ([]window.VS, int) {
	rng := rand.New(rand.NewSource(seed))
	n3 := func(scale float64) []float64 {
		return []float64{
			math.Abs(rng.NormFloat64()) * 0.03 * scale,
			math.Abs(rng.NormFloat64()) * 0.1 * scale,
			math.Abs(rng.NormFloat64()) * 0.05 * scale,
		}
	}
	normalTS := func(id int) window.TS {
		s := 1 + rng.Float64()*5
		return window.TS{TrackID: id, Vectors: [][]float64{n3(s), n3(s), n3(s)}}
	}
	var db []window.VS
	idx := 0
	add := func(tss ...window.TS) {
		db = append(db, window.VS{Index: idx, StartFrame: idx * 15, EndFrame: idx*15 + 10, TSs: tss})
		idx++
	}
	for i := 0; i < nRel; i++ {
		peak := []float64{0.35 + rng.Float64()*0.1, 2.6 + rng.NormFloat64()*0.5, 1.1 + rng.NormFloat64()*0.2}
		after := []float64{0.3 + rng.Float64()*0.1, 0.5 + rng.NormFloat64()*0.1, 0.25 + rng.NormFloat64()*0.08}
		add(window.TS{TrackID: 100 + i, Vectors: [][]float64{n3(1), peak, after}})
	}
	for i := 0; i < nDis; i++ {
		spike := []float64{0.02 + rng.Float64()*0.02, 2.3 + rng.NormFloat64()*0.5, 0.05 + math.Abs(rng.NormFloat64())*0.04}
		add(window.TS{TrackID: 300 + i, Vectors: [][]float64{n3(1), spike, n3(1)}})
	}
	for i := 0; i < nNorm; i++ {
		add(normalTS(400 + i))
	}
	return db, nRel
}

// TestShardedRecall: on the demo-mix catalog, a 5-round oracle-judged
// feedback session through the sharded engine at C = N/4 must keep
// recall@10 ≥ 0.9 against the exact engine run on the same
// accumulated labels — for both index kinds and S ∈ {2,3,5}. This is
// the gate that holds the per-shard budget heuristic (C/S plus
// slack) to measurement: a budget cut too deep shows up here first.
func TestShardedRecall(t *testing.T) {
	db, nRel := demoMixDB(1, 12, 12, 72)
	n := len(db)
	for _, kind := range index.Kinds() {
		for _, s := range []int{2, 3, 5} {
			probers := buildProbers(t, db, s, kind, index.Options{})
			inner := retrieval.MILEngine{Opt: mil.DefaultOptions()}
			eng := &Engine{Inner: inner, Probers: probers, C: n / 4}
			labels := make(map[int]mil.Label)
			for round := 0; round < 5; round++ {
				got, gotTop, err := retrieval.RankRound(eng, db, labels, 20)
				if err != nil {
					t.Fatalf("%s S=%d round %d: %v", kind, s, round, err)
				}
				want, _, err := retrieval.RankRound(inner, db, labels, 20)
				if err != nil {
					t.Fatal(err)
				}
				set := make(map[int]bool, 10)
				for _, p := range want[:10] {
					set[p] = true
				}
				hit := 0
				for _, p := range got[:10] {
					if set[p] {
						hit++
					}
				}
				if r := float64(hit) / 10; r < 0.9 {
					t.Fatalf("%s S=%d round %d: recall@10 = %.2f at C=N/4, want >= 0.9", kind, s, round, r)
				}
				for _, pos := range gotTop {
					if pos < nRel {
						labels[db[pos].Index] = mil.Positive
					} else {
						labels[db[pos].Index] = mil.Negative
					}
				}
			}
		}
	}
}

// TestShardedBoundCarry pins the scout-and-carry scatter: with local
// probers and S > 1 the carried wave runs bounded (BoundedShardProbes
// advances), the C=N merge stays permutation-identical to the
// unsharded ranking even though the carried shards pruned against the
// scout's radii (completion hits restore whatever pruning skipped),
// and at a quarter budget a full feedback session still holds
// recall@10 >= 0.9 against the exact engine.
func TestShardedBoundCarry(t *testing.T) {
	db, nRel := demoMixDB(23, 10, 10, 92)
	n := len(db)
	inner := retrieval.MILEngine{Opt: mil.DefaultOptions()}
	for _, s := range []int{2, 4} {
		probers := buildProbers(t, db, s, index.KindVPTree, index.Options{})
		st := &Stats{}
		eng := &Engine{Inner: inner, Probers: probers, C: n, Stats: st}
		labels := shardLabels(db, 4, 2)
		got, err := eng.Rank(db, labels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inner.Rank(db, labels)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("S=%d: C=N ranking diverged under carried bounds", s)
		}
		if carried := st.BoundedShardProbes.Load(); carried != int64(s-1) {
			t.Fatalf("S=%d: %d bounded shard probes, want %d (every non-scout shard)", s, carried, s-1)
		}

		// A feedback session at C=N/4: the carried bounds must not cost
		// recall the budget itself preserves.
		eng = &Engine{Inner: inner, Probers: probers, C: n / 4, Stats: st}
		sess := make(map[int]mil.Label)
		for round := 0; round < 5; round++ {
			got, gotTop, err := retrieval.RankRound(eng, db, sess, 20)
			if err != nil {
				t.Fatalf("S=%d round %d: %v", s, round, err)
			}
			want, _, err := retrieval.RankRound(inner, db, sess, 20)
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[int]bool, 10)
			for _, p := range want[:10] {
				set[p] = true
			}
			hit := 0
			for _, p := range got[:10] {
				if set[p] {
					hit++
				}
			}
			if r := float64(hit) / 10; r < 0.9 {
				t.Fatalf("S=%d round %d: recall@10 = %.2f under carried bounds, want >= 0.9", s, round, r)
			}
			for _, pos := range gotTop {
				if pos < nRel {
					sess[db[pos].Index] = mil.Positive
				} else {
					sess[db[pos].Index] = mil.Negative
				}
			}
		}
	}
}

// TestShardedDeterminism: the merge order must not depend on the
// goroutine schedule — repeated runs return identical rankings.
func TestShardedDeterminism(t *testing.T) {
	db := shardSynthDB(7, 63)
	labels := shardLabels(db, 3, 2)
	probers := buildProbers(t, db, 5, index.KindIVF, index.Options{})
	eng := &Engine{Inner: retrieval.RocchioEngine{}, Probers: probers, C: 16, Workers: 2}
	first, err := eng.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := eng.Rank(db, labels)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged from the first", i)
		}
	}
}

// TestPerShardBudget pins the budget policy: full C when C >= N or
// S == 1 (the exactness path), a reduced C/S-plus-slack budget
// otherwise, never exceeding C.
func TestPerShardBudget(t *testing.T) {
	mk := func(s, c int) *Engine {
		return &Engine{C: c, Probers: make([]Prober, s)}
	}
	if got := mk(4, 100).perShardC(100); got != 100 {
		t.Fatalf("C=N: got %d, want full 100", got)
	}
	if got := mk(1, 50).perShardC(1000); got != 50 {
		t.Fatalf("S=1: got %d, want full 50", got)
	}
	// Small C: the 64 slack floor dominates, capped back at C.
	if got := mk(4, 48).perShardC(1000); got != 48 {
		t.Fatalf("small C: got %d, want 48", got)
	}
	// Large C: C/S + C/16.
	if got := mk(4, 1600).perShardC(48000); got != 1600/4+1600/16 {
		t.Fatalf("large C: got %d, want %d", got, 1600/4+1600/16)
	}
}

// TestProbeLocalCompletion: a budget covering the partition returns
// every bag exactly once, probed hits first with real distances,
// completion hits marked with the negative sentinel.
func TestProbeLocalCompletion(t *testing.T) {
	db := shardSynthDB(9, 30)
	bi, err := index.Build(db, index.KindVPTree, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	probes := PositiveProbes(db, shardLabels(db, 2, 0))
	hits, _, err := ProbeLocal(db, bi, probes, len(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(db) {
		t.Fatalf("full-budget probe returned %d of %d bags", len(hits), len(db))
	}
	seen := map[int]bool{}
	for _, h := range hits {
		if seen[h.VS] {
			t.Fatalf("VS %d returned twice", h.VS)
		}
		seen[h.VS] = true
	}
	// Mismatched index is rejected, not silently misaligned.
	if _, _, err := ProbeLocal(db[:10], bi, probes, 5); err == nil {
		t.Fatal("stale index accepted")
	}
}

// seedingInner wraps an engine with canned round-0 probes, standing
// in for a predicate query.
type seedingInner struct {
	retrieval.Engine
	probes [][]float64
}

func (s seedingInner) SeedProbes([]window.VS) [][]float64 { return s.probes }

// TestShardedSeededIdentity: the sharded C=N identity extends to
// probe-seeded sessions — with zero labels, a seeding engine's
// scatter–gather ranking must equal its unsharded ranking, and it
// must flow through the scatter path (a seeded round, not a full
// delegation): the full budget still reassembles every partition via
// completion hits.
func TestShardedSeededIdentity(t *testing.T) {
	db := shardSynthDB(9, 63)
	probes := [][]float64{db[0].TSs[0].Flat(), db[21].TSs[0].Flat()}
	for _, kind := range index.Kinds() {
		for _, s := range []int{1, 3} {
			probers := buildProbers(t, db, s, kind, index.Options{})
			for _, inner := range shardEngines() {
				seeded := seedingInner{Engine: inner, probes: probes}
				want, err := inner.Rank(db, map[int]mil.Label{})
				if err != nil {
					t.Fatal(err)
				}
				st := &Stats{}
				eng := &Engine{Inner: seeded, Probers: probers, C: len(db), Stats: st}
				got, err := eng.Rank(db, map[int]mil.Label{})
				if err != nil {
					t.Fatalf("kind=%s S=%d %s: %v", kind, s, inner.Name(), err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("kind=%s S=%d %s: seeded sharded C=N ranking diverges\ngot  %v\nwant %v",
						kind, s, inner.Name(), got, want)
				}
				if st.ScatterRounds.Load() != 1 || st.SeededRounds.Load() != 1 || st.FullRounds.Load() != 0 {
					t.Fatalf("kind=%s S=%d %s: stats scatter=%d seeded=%d full=%d, want 1/1/0",
						kind, s, inner.Name(), st.ScatterRounds.Load(), st.SeededRounds.Load(), st.FullRounds.Load())
				}
			}
		}
	}
}
