package shard

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/index"
	"milvideo/internal/mil"
	"milvideo/internal/retrieval"
	"milvideo/internal/testkit"
	"milvideo/internal/window"
)

// checkPermutation asserts the ranking is a full permutation of db
// positions — the invariant a degraded query must still satisfy.
func checkPermutation(t *testing.T, ranking []int, db []window.VS) {
	t.Helper()
	if err := testkit.CheckRankingPermutation(ranking, db); err != nil {
		t.Fatal(err)
	}
}

// TestSlowShardDegrades: one shard stalled past the scatter deadline
// degrades the round to partial results — the query succeeds, returns
// a valid full permutation, and the loss is visible in the counters.
func TestSlowShardDegrades(t *testing.T) {
	db := shardSynthDB(11, 70)
	labels := shardLabels(db, 3, 2)
	probers := buildProbers(t, db, 3, index.KindVPTree, index.Options{})
	st := &Stats{}
	eng := &Engine{
		Inner:   retrieval.MILEngine{Opt: mil.DefaultOptions()},
		Probers: probers,
		C:       24,
		Timeout: 30 * time.Millisecond,
		Stats:   st,
		Fault: func(shard int, seq uint64) (time.Duration, error) {
			if shard == 1 {
				return 200 * time.Millisecond, nil
			}
			return 0, nil
		},
	}
	ranking, err := eng.Rank(db, labels)
	if err != nil {
		t.Fatalf("degraded round failed outright: %v", err)
	}
	checkPermutation(t, ranking, db)
	if st.PartialRounds.Load() < 1 {
		t.Fatalf("partial_rounds = %d, want >= 1", st.PartialRounds.Load())
	}
	if st.ShardTimeouts.Load() < 1 {
		t.Fatalf("shard_timeouts = %d, want >= 1", st.ShardTimeouts.Load())
	}
	if st.InjectedStalls.Load() < 1 {
		t.Fatalf("injected_stalls = %d, want >= 1", st.InjectedStalls.Load())
	}
}

// TestFailedShardDegrades: a hard shard error (not a timeout) also
// degrades to partial results with the error counter, not the
// timeout counter.
func TestFailedShardDegrades(t *testing.T) {
	db := shardSynthDB(12, 63)
	labels := shardLabels(db, 3, 1)
	probers := buildProbers(t, db, 3, index.KindIVF, index.Options{})
	st := &Stats{}
	boom := errors.New("shard 1 lost")
	eng := &Engine{
		Inner:   retrieval.RocchioEngine{},
		Probers: probers,
		C:       20,
		Stats:   st,
		Fault: func(shard int, seq uint64) (time.Duration, error) {
			if shard == 1 {
				return 0, boom
			}
			return 0, nil
		},
	}
	ranking, err := eng.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, ranking, db)
	if st.PartialRounds.Load() != 1 || st.ShardErrors.Load() != 1 || st.InjectedFailures.Load() != 1 {
		t.Fatalf("partial=%d errors=%d injected=%d, want 1/1/1",
			st.PartialRounds.Load(), st.ShardErrors.Load(), st.InjectedFailures.Load())
	}
	if st.ShardTimeouts.Load() != 0 {
		t.Fatalf("hard failure counted as timeout")
	}
}

// TestAllShardsLostFallsBack: when every shard is lost the engine
// falls back to the full exact ranking rather than failing the query
// — and the result is identical to the unsharded ranking.
func TestAllShardsLostFallsBack(t *testing.T) {
	db := shardSynthDB(13, 49)
	labels := shardLabels(db, 2, 2)
	inner := retrieval.MILEngine{Opt: mil.DefaultOptions()}
	probers := buildProbers(t, db, 3, index.KindVPTree, index.Options{})
	st := &Stats{}
	eng := &Engine{
		Inner:   inner,
		Probers: probers,
		C:       16,
		Stats:   st,
		Fault: func(shard int, seq uint64) (time.Duration, error) {
			return 0, errors.New("total outage")
		},
	}
	got, err := eng.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inner.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("all-shards-lost fallback is not the exact ranking")
	}
	if st.AllFailedRounds.Load() != 1 {
		t.Fatalf("all_failed_rounds = %d, want 1", st.AllFailedRounds.Load())
	}
	if st.ShardErrors.Load() != 3 {
		t.Fatalf("shard_errors = %d, want 3", st.ShardErrors.Load())
	}
}

// TestInjectorSlowShard wires the deterministic fault injector as the
// Fault hook: with SlowShard = 1.0 every scattered shard stalls past
// the deadline, so the engine degrades on schedule — and the same
// seed produces the same schedule.
func TestInjectorSlowShard(t *testing.T) {
	db := shardSynthDB(14, 56)
	labels := shardLabels(db, 3, 1)
	probers := buildProbers(t, db, 2, index.KindVPTree, index.Options{})
	inj := faults.New(faults.Config{Seed: 99, SlowShard: 1, SlowShardDur: 100 * time.Millisecond})
	st := &Stats{}
	eng := &Engine{
		Inner:   retrieval.RocchioEngine{},
		Probers: probers,
		C:       16,
		Timeout: 20 * time.Millisecond,
		Stats:   st,
		Fault:   inj.ShardFault,
	}
	ranking, err := eng.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, ranking, db)
	if st.AllFailedRounds.Load() != 1 {
		t.Fatalf("rate-1.0 slow shards should lose every shard: all_failed=%d", st.AllFailedRounds.Load())
	}
	if st.InjectedStalls.Load() != 2 {
		t.Fatalf("injected_stalls = %d, want 2", st.InjectedStalls.Load())
	}
}
