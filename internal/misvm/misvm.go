// Package misvm implements MI-SVM (Andrews, Tsochantaridis & Hofmann
// — the paper's §2.1 reference [16]): Multiple Instance Learning by
// alternating witness selection with supervised SVM training. Each
// positive bag nominates one witness instance; a binary C-SVM is
// trained on the witnesses against every instance of the negative
// bags; each positive bag then re-nominates the instance its decision
// function likes best, until the selection stabilizes.
//
// Together with internal/dd (EM-DD) this gives the repository all
// three MIL solver families the paper's literature review discusses,
// so the One-class SVM choice can be compared head to head
// (experiments E10).
package misvm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/svm"
	"milvideo/internal/window"
)

// Errors returned by the trainer.
var (
	ErrNoPositiveBags = errors.New("misvm: no positive bags")
	ErrNoNegatives    = errors.New("misvm: no negative instances")
)

// Options configures training.
type Options struct {
	// C is the binary SVM's soft-margin penalty (0 = 1).
	C float64
	// Kernel defaults to RBF with the median heuristic over the
	// initial training set.
	Kernel kernel.Kernel
	// MaxIters bounds the witness-reselection loop (0 = 15).
	MaxIters int
}

// Model is a trained MI-SVM.
type Model struct {
	svm *svm.Binary
	// Iterations is how many selection rounds ran.
	Iterations int
}

// Train runs the MI-SVM alternation on the labeled bags.
func Train(bags []mil.Bag, opt Options) (*Model, error) {
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 15
	}
	var pos []mil.Bag
	var negX [][]float64
	for _, b := range bags {
		switch b.Label {
		case mil.Positive:
			if len(b.Instances) > 0 {
				pos = append(pos, b)
			}
		case mil.Negative:
			negX = append(negX, b.Instances...)
		}
	}
	if len(pos) == 0 {
		return nil, ErrNoPositiveBags
	}
	if len(negX) == 0 {
		return nil, ErrNoNegatives
	}

	// Initial witnesses: the most "eventful" instance of each bag
	// (largest squared norm), matching the §5.3 heuristic spirit.
	witness := make([]int, len(pos))
	for i, b := range pos {
		best, bestV := 0, math.Inf(-1)
		for j, inst := range b.Instances {
			v := 0.0
			for _, x := range inst {
				v += x * x
			}
			if v > bestV {
				best, bestV = j, v
			}
		}
		witness[i] = best
	}

	var model *svm.Binary
	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		X := make([][]float64, 0, len(pos)+len(negX))
		y := make([]bool, 0, cap(X))
		for i, b := range pos {
			X = append(X, b.Instances[witness[i]])
			y = append(y, true)
		}
		X = append(X, negX...)
		for range negX {
			y = append(y, false)
		}
		m, err := svm.TrainBinary(X, y, svm.BinaryOptions{C: opt.C, Kernel: opt.Kernel})
		if err != nil {
			return nil, fmt.Errorf("misvm: iteration %d: %w", iters, err)
		}
		model = m

		changed := false
		for i, b := range pos {
			best, bestD := witness[i], math.Inf(-1)
			for j, inst := range b.Instances {
				d, err := m.Decision(inst)
				if err != nil {
					return nil, fmt.Errorf("misvm: bag %d: %w", b.ID, err)
				}
				if d > bestD {
					best, bestD = j, d
				}
			}
			if best != witness[i] {
				witness[i] = best
				changed = true
			}
		}
		if !changed {
			iters++
			break
		}
	}
	return &Model{svm: model, Iterations: iters}, nil
}

// InstanceScore returns the decision value of one instance.
func (m *Model) InstanceScore(x []float64) (float64, error) {
	return m.svm.Decision(x)
}

// BagScore scores a bag by its best instance (the MI-SVM max rule).
// ok is false for empty bags.
func (m *Model) BagScore(b mil.Bag) (score float64, ok bool, err error) {
	if len(b.Instances) == 0 {
		return 0, false, nil
	}
	best := math.Inf(-1)
	for i, inst := range b.Instances {
		d, err := m.svm.Decision(inst)
		if err != nil {
			return 0, false, fmt.Errorf("misvm: bag %d instance %d: %w", b.ID, i, err)
		}
		if d > best {
			best = d
		}
	}
	return best, true, nil
}

// Engine adapts MI-SVM to the retrieval framework, mirroring the
// MIL-OCSVM and EM-DD engines: heuristic fallback with no positive
// labels, bag-max ranking otherwise. Unlike the One-class engine it
// uses the negative bags as real supervision.
type Engine struct {
	Opt Options
}

// Name implements retrieval.Engine.
func (Engine) Name() string { return "MI-SVM" }

// Rank implements retrieval.Engine.
func (e Engine) Rank(db []window.VS, labels map[int]mil.Label) ([]int, error) {
	bags := make([]mil.Bag, len(db))
	for i, vs := range db {
		b := mil.Bag{ID: vs.Index, Label: labels[vs.Index]}
		for _, ts := range vs.TSs {
			b.Instances = append(b.Instances, ts.Flat())
		}
		bags[i] = b
	}
	m, err := Train(bags, e.Opt)
	if errors.Is(err, ErrNoPositiveBags) || errors.Is(err, ErrNoNegatives) {
		return heuristicRank(db), nil
	}
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(db))
	for i := range db {
		s, ok, err := m.BagScore(bags[i])
		if err != nil {
			return nil, err
		}
		if !ok {
			s = math.Inf(-1)
		}
		scores[i] = s
	}
	idx := make([]int, len(db))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx, nil
}

// heuristicRank mirrors the §5.3 initial-query ordering.
func heuristicRank(db []window.VS) []int {
	scores := make([]float64, len(db))
	for i, vs := range db {
		best := math.Inf(-1)
		for _, ts := range vs.TSs {
			for _, f := range ts.Vectors {
				s := 0.0
				for _, v := range f {
					s += v * v
				}
				if s > best {
					best = s
				}
			}
		}
		scores[i] = best
	}
	idx := make([]int, len(db))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
