package misvm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/window"
)

// milProblem: positive bags hold one instance near the concept plus
// noise; negative bags hold only noise.
func milProblem(rng *rand.Rand, nPos, nNeg, perBag int) []mil.Bag {
	var bags []mil.Bag
	id := 0
	noise := func() []float64 {
		return []float64{rng.Float64()*8 - 4, rng.Float64()*8 - 4}
	}
	concept := func() []float64 {
		return []float64{5 + rng.NormFloat64()*0.3, 5 + rng.NormFloat64()*0.3}
	}
	for i := 0; i < nPos; i++ {
		b := mil.Bag{ID: id, Label: mil.Positive}
		id++
		b.Instances = append(b.Instances, concept())
		for j := 1; j < perBag; j++ {
			b.Instances = append(b.Instances, noise())
		}
		bags = append(bags, b)
	}
	for i := 0; i < nNeg; i++ {
		b := mil.Bag{ID: id, Label: mil.Negative}
		id++
		for j := 0; j < perBag; j++ {
			b.Instances = append(b.Instances, noise())
		}
		bags = append(bags, b)
	}
	return bags
}

func TestMISVMLearnsConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	bags := milProblem(rng, 10, 10, 3)
	m, err := Train(bags, Options{C: 2, Kernel: kernel.RBF{Sigma: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations < 1 {
		t.Fatal("no iterations")
	}
	hi, err := m.InstanceScore([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.InstanceScore([]float64{-2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("concept not separated: %v vs %v", hi, lo)
	}
	// Bag max rule: a bag with a concept instance outscores pure
	// noise.
	pb, ok, err := m.BagScore(mil.Bag{ID: 99, Instances: [][]float64{{0, 0}, {5, 5}}})
	if err != nil || !ok {
		t.Fatalf("pos bag: %v %v", ok, err)
	}
	nb, ok, err := m.BagScore(mil.Bag{ID: 98, Instances: [][]float64{{0, 0}, {-3, 2}}})
	if err != nil || !ok {
		t.Fatalf("neg bag: %v %v", ok, err)
	}
	if pb <= nb {
		t.Fatalf("bag ranking: %v vs %v", pb, nb)
	}
	// Empty bag: no evidence.
	if _, ok, err := m.BagScore(mil.Bag{ID: 97}); err != nil || ok {
		t.Fatalf("empty bag: %v %v", ok, err)
	}
}

func TestMISVMWitnessReselection(t *testing.T) {
	// Construct bags where the largest-norm instance is NOT the
	// concept instance, so the initial witness is wrong and the
	// alternation must move it.
	rng := rand.New(rand.NewSource(42))
	var bags []mil.Bag
	id := 0
	for i := 0; i < 8; i++ {
		b := mil.Bag{ID: id, Label: mil.Positive}
		id++
		// Concept lives at (2, 0) — modest norm.
		b.Instances = append(b.Instances, []float64{2 + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
		// Decoy with a large norm at a bag-specific direction.
		ang := float64(i)
		b.Instances = append(b.Instances, []float64{7 * math.Cos(ang), 7 * math.Sin(ang)})
		bags = append(bags, b)
	}
	for i := 0; i < 8; i++ {
		b := mil.Bag{ID: id, Label: mil.Negative}
		id++
		// Negatives sit exactly on the decoy ring, so the decoys are
		// inseparable from them and the first model must reject the
		// initial witnesses (greedy MI-SVM cannot escape separable
		// decoys — that failure mode is documented, not tested here).
		ang := float64(i)
		b.Instances = append(b.Instances, []float64{7 * math.Cos(ang), 7 * math.Sin(ang)})
		b.Instances = append(b.Instances, []float64{rng.NormFloat64() * 0.3, 4 + rng.NormFloat64()*0.3})
		bags = append(bags, b)
	}
	m, err := Train(bags, Options{C: 2, Kernel: kernel.RBF{Sigma: 1.2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations < 2 {
		t.Fatalf("witnesses never moved (%d iterations)", m.Iterations)
	}
	hi, _ := m.InstanceScore([]float64{2, 0})
	lo, _ := m.InstanceScore([]float64{0, 4})
	if hi <= lo {
		t.Fatalf("reselection failed: concept %v vs negative zone %v", hi, lo)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); !errors.Is(err, ErrNoPositiveBags) {
		t.Fatalf("empty: %v", err)
	}
	posOnly := []mil.Bag{{Label: mil.Positive, Instances: [][]float64{{1, 2}}}}
	if _, err := Train(posOnly, Options{}); !errors.Is(err, ErrNoNegatives) {
		t.Fatalf("no negatives: %v", err)
	}
}

func TestEngineRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	quiet := func() []float64 {
		return []float64{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3}
	}
	spike := func() []float64 {
		return []float64{0.3, 3 + rng.NormFloat64()*0.2, 1}
	}
	var db []window.VS
	for i := 0; i < 16; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		if i%4 == 0 {
			vs.TSs = append(vs.TSs, window.TS{TrackID: 100 + i, Vectors: [][]float64{quiet(), spike(), quiet()}})
		}
		vs.TSs = append(vs.TSs, window.TS{TrackID: i, Vectors: [][]float64{quiet(), quiet(), quiet()}})
		db = append(db, vs)
	}
	labels := map[int]mil.Label{0: mil.Positive, 4: mil.Positive, 1: mil.Negative, 2: mil.Negative}
	e := Engine{Opt: Options{C: 2}}
	rank, err := e.Rank(db, labels)
	if err != nil {
		t.Fatal(err)
	}
	top := map[int]bool{}
	for _, i := range rank[:4] {
		top[db[i].Index] = true
	}
	// The unlabeled event VSs (8, 12) must rank in the top 4.
	if !top[8] || !top[12] {
		t.Fatalf("event VSs not found: %v", rank[:6])
	}
	if e.Name() == "" {
		t.Fatal("name")
	}
	// Fallback without labels.
	rank, err = e.Rank(db, nil)
	if err != nil || len(rank) != len(db) {
		t.Fatalf("fallback: %v %v", len(rank), err)
	}
}
