package window

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"milvideo/internal/event"
	"milvideo/internal/geom"
	"milvideo/internal/track"
)

// randomTracks builds arbitrary well-formed tracks.
func randomTracks(rng *rand.Rand, n, maxFrames int) []*track.Track {
	tracks := make([]*track.Track, n)
	for i := range tracks {
		start := rng.Intn(maxFrames / 2)
		length := 2 + rng.Intn(maxFrames-start-1)
		tr := &track.Track{ID: i, Confirmed: true}
		x, y := rng.Float64()*300, rng.Float64()*200
		vx, vy := rng.NormFloat64()*3, rng.NormFloat64()
		for f := 0; f < length; f++ {
			tr.Observations = append(tr.Observations, track.Observation{
				Frame:    start + f,
				Centroid: geom.Pt(x+vx*float64(f), y+vy*float64(f)),
			})
		}
		tracks[i] = tr
	}
	return tracks
}

// TestExtractStructuralInvariants checks, across random inputs:
// window frame ranges lie inside the clip, every TS has exactly
// WindowSize samples and vectors, indices are sequential, and TSs
// within a VS are sorted by track ID.
func TestExtractStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		frames := 40 + rng.Intn(300)
		tracks := randomTracks(rng, rng.Intn(8), frames)
		cfg := Config{
			SampleRate: 1 + rng.Intn(7),
			WindowSize: 1 + rng.Intn(5),
			Step:       rng.Intn(4), // 0 → WindowSize
		}
		vss, err := Extract(tracks, event.AccidentModel{}, frames, cfg)
		if err != nil {
			// Clips shorter than one window are a legitimate error.
			continue
		}
		norm, err := cfg.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		for i, vs := range vss {
			if vs.Index != i {
				t.Fatalf("trial %d: index %d at position %d", trial, vs.Index, i)
			}
			if vs.StartFrame < 0 || vs.EndFrame >= frames || vs.StartFrame > vs.EndFrame {
				t.Fatalf("trial %d: frame range [%d,%d] outside clip of %d", trial, vs.StartFrame, vs.EndFrame, frames)
			}
			if (vs.EndFrame-vs.StartFrame)/norm.SampleRate != norm.WindowSize-1 {
				t.Fatalf("trial %d: window span %d-%d at rate %d size %d", trial, vs.StartFrame, vs.EndFrame, norm.SampleRate, norm.WindowSize)
			}
			prevID := -1
			for _, ts := range vs.TSs {
				if len(ts.Samples) != norm.WindowSize || len(ts.Vectors) != norm.WindowSize {
					t.Fatalf("trial %d: TS shape %d/%d, want %d", trial, len(ts.Samples), len(ts.Vectors), norm.WindowSize)
				}
				if ts.TrackID <= prevID {
					t.Fatalf("trial %d: TSs not sorted by track ID", trial)
				}
				prevID = ts.TrackID
				if len(ts.Flat()) != norm.WindowSize*3 {
					t.Fatalf("trial %d: flat dim %d", trial, len(ts.Flat()))
				}
			}
		}
	}
}

// extractCase is a quick.Generator producing a random clip length,
// extraction config and well-formed track set. Clips are kept long
// enough (≥ 30 frames at rate ≤ 6, window ≤ 4) that at least one
// window always fits, so Extract never legitimately errors.
type extractCase struct {
	frames          int
	rate, win, step int
	tracks          []*track.Track
}

func (extractCase) Generate(r *rand.Rand, _ int) reflect.Value {
	ec := extractCase{
		frames: 30 + r.Intn(200),
		rate:   1 + r.Intn(6),
		win:    1 + r.Intn(4),
		step:   r.Intn(4), // 0 → WindowSize (non-overlapping)
	}
	ec.tracks = randomTracks(r, r.Intn(6), ec.frames)
	return reflect.ValueOf(ec)
}

// TestQuickExtractCoversSegmentsExactly is the bag-construction
// correctness property, checked against a from-scratch model of the
// paper's §5.1 semantics: windows start at every multiple of Step
// that fits on the grid; a trajectory contributes a TS to a window
// iff the window's grid span lies inside the track's sampled grid
// interval [⌈start/rate⌉, ⌊end/rate⌋]; each TS samples exactly the
// window's grid frames; and every (track, grid position) segment is
// covered exactly as often as eligible windows overlap it — exactly
// once under the default non-overlapping stride.
func TestQuickExtractCoversSegmentsExactly(t *testing.T) {
	prop := func(ec extractCase) bool {
		cfg := Config{SampleRate: ec.rate, WindowSize: ec.win, Step: ec.step}
		vss, err := Extract(ec.tracks, event.AccidentModel{}, ec.frames, cfg)
		if err != nil {
			t.Logf("extract failed: %v", err)
			return false
		}
		norm, err := cfg.Normalized()
		if err != nil {
			t.Logf("normalize failed: %v", err)
			return false
		}
		lastGrid := (ec.frames - 1) / norm.SampleRate
		var starts []int
		for p0 := 0; p0+norm.WindowSize-1 <= lastGrid; p0 += norm.Step {
			starts = append(starts, p0)
		}
		if len(vss) != len(starts) {
			t.Logf("%d windows, want %d", len(vss), len(starts))
			return false
		}
		// A track's samples land on the grid positions of the interval
		// [⌈start/rate⌉, ⌊end/rate⌋] (tracks are frame-contiguous).
		span := make(map[int][2]int, len(ec.tracks))
		for _, tr := range ec.tracks {
			lo := (tr.Start() + norm.SampleRate - 1) / norm.SampleRate
			hi := tr.End() / norm.SampleRate
			if lo <= hi {
				span[tr.ID] = [2]int{lo, hi}
			}
		}
		coverage := make(map[[2]int]int) // (trackID, grid position) → TS samples
		for i, vs := range vss {
			p0 := starts[i]
			if vs.StartFrame != p0*norm.SampleRate || vs.EndFrame != (p0+norm.WindowSize-1)*norm.SampleRate {
				t.Logf("window %d: frames [%d,%d], want [%d,%d]", i,
					vs.StartFrame, vs.EndFrame, p0*norm.SampleRate, (p0+norm.WindowSize-1)*norm.SampleRate)
				return false
			}
			got := make(map[int]bool, len(vs.TSs))
			for _, ts := range vs.TSs {
				got[ts.TrackID] = true
				if _, known := span[ts.TrackID]; !known {
					t.Logf("window %d: TS for track %d which has no grid samples", i, ts.TrackID)
					return false
				}
				for k, s := range ts.Samples {
					if s.Frame != (p0+k)*norm.SampleRate {
						t.Logf("window %d track %d sample %d: frame %d, want %d",
							i, ts.TrackID, k, s.Frame, (p0+k)*norm.SampleRate)
						return false
					}
					coverage[[2]int{ts.TrackID, p0 + k}]++
				}
			}
			for id, sp := range span {
				want := p0 >= sp[0] && p0+norm.WindowSize-1 <= sp[1]
				if got[id] != want {
					t.Logf("window %d (grid [%d,%d]): track %d span [%d,%d] membership %v, want %v",
						i, p0, p0+norm.WindowSize-1, id, sp[0], sp[1], got[id], want)
					return false
				}
			}
		}
		// Segment coverage: each sampled grid position of each track is
		// hit once per eligible window overlapping it — never more.
		for id, sp := range span {
			for p := sp[0]; p <= sp[1]; p++ {
				want := 0
				for _, p0 := range starts {
					if p0 <= p && p <= p0+norm.WindowSize-1 && p0 >= sp[0] && p0+norm.WindowSize-1 <= sp[1] {
						want++
					}
				}
				if coverage[[2]int{id, p}] != want {
					t.Logf("track %d grid pos %d covered %d times, want %d", id, p, coverage[[2]int{id, p}], want)
					return false
				}
				if norm.Step >= norm.WindowSize && want > 1 {
					t.Logf("non-overlapping stride covered track %d pos %d %d times", id, p, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractCountMonotoneInTracks: adding a track never decreases
// the total TS count.
func TestExtractCountMonotoneInTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	frames := 200
	tracks := randomTracks(rng, 6, frames)
	cfg := DefaultConfig()
	prev := -1
	for n := 0; n <= len(tracks); n++ {
		vss, err := Extract(tracks[:n], event.AccidentModel{}, frames, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c := CountTS(vss); c < prev {
			t.Fatalf("TS count decreased: %d → %d at n=%d", prev, c, n)
		} else {
			prev = c
		}
	}
}

// TestOverlapContainsNonOverlapWindows: with Step 1 every
// non-overlapping window's frame range also appears.
func TestOverlapContainsNonOverlapWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	frames := 150
	tracks := randomTracks(rng, 4, frames)
	nonOverlap, err := Extract(tracks, event.AccidentModel{}, frames, Config{SampleRate: 5, WindowSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Extract(tracks, event.AccidentModel{}, frames, Config{SampleRate: 5, WindowSize: 3, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranges := make(map[[2]int]bool)
	for _, vs := range overlap {
		ranges[[2]int{vs.StartFrame, vs.EndFrame}] = true
	}
	for _, vs := range nonOverlap {
		if !ranges[[2]int{vs.StartFrame, vs.EndFrame}] {
			t.Fatalf("window [%d,%d] missing from overlapped extraction", vs.StartFrame, vs.EndFrame)
		}
	}
	if len(overlap) < len(nonOverlap) {
		t.Fatal("overlapped extraction produced fewer windows")
	}
}
