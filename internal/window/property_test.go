package window

import (
	"math/rand"
	"testing"

	"milvideo/internal/event"
	"milvideo/internal/geom"
	"milvideo/internal/track"
)

// randomTracks builds arbitrary well-formed tracks.
func randomTracks(rng *rand.Rand, n, maxFrames int) []*track.Track {
	tracks := make([]*track.Track, n)
	for i := range tracks {
		start := rng.Intn(maxFrames / 2)
		length := 2 + rng.Intn(maxFrames-start-1)
		tr := &track.Track{ID: i, Confirmed: true}
		x, y := rng.Float64()*300, rng.Float64()*200
		vx, vy := rng.NormFloat64()*3, rng.NormFloat64()
		for f := 0; f < length; f++ {
			tr.Observations = append(tr.Observations, track.Observation{
				Frame:    start + f,
				Centroid: geom.Pt(x+vx*float64(f), y+vy*float64(f)),
			})
		}
		tracks[i] = tr
	}
	return tracks
}

// TestExtractStructuralInvariants checks, across random inputs:
// window frame ranges lie inside the clip, every TS has exactly
// WindowSize samples and vectors, indices are sequential, and TSs
// within a VS are sorted by track ID.
func TestExtractStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		frames := 40 + rng.Intn(300)
		tracks := randomTracks(rng, rng.Intn(8), frames)
		cfg := Config{
			SampleRate: 1 + rng.Intn(7),
			WindowSize: 1 + rng.Intn(5),
			Step:       rng.Intn(4), // 0 → WindowSize
		}
		vss, err := Extract(tracks, event.AccidentModel{}, frames, cfg)
		if err != nil {
			// Clips shorter than one window are a legitimate error.
			continue
		}
		norm, err := cfg.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		for i, vs := range vss {
			if vs.Index != i {
				t.Fatalf("trial %d: index %d at position %d", trial, vs.Index, i)
			}
			if vs.StartFrame < 0 || vs.EndFrame >= frames || vs.StartFrame > vs.EndFrame {
				t.Fatalf("trial %d: frame range [%d,%d] outside clip of %d", trial, vs.StartFrame, vs.EndFrame, frames)
			}
			if (vs.EndFrame-vs.StartFrame)/norm.SampleRate != norm.WindowSize-1 {
				t.Fatalf("trial %d: window span %d-%d at rate %d size %d", trial, vs.StartFrame, vs.EndFrame, norm.SampleRate, norm.WindowSize)
			}
			prevID := -1
			for _, ts := range vs.TSs {
				if len(ts.Samples) != norm.WindowSize || len(ts.Vectors) != norm.WindowSize {
					t.Fatalf("trial %d: TS shape %d/%d, want %d", trial, len(ts.Samples), len(ts.Vectors), norm.WindowSize)
				}
				if ts.TrackID <= prevID {
					t.Fatalf("trial %d: TSs not sorted by track ID", trial)
				}
				prevID = ts.TrackID
				if len(ts.Flat()) != norm.WindowSize*3 {
					t.Fatalf("trial %d: flat dim %d", trial, len(ts.Flat()))
				}
			}
		}
	}
}

// TestExtractCountMonotoneInTracks: adding a track never decreases
// the total TS count.
func TestExtractCountMonotoneInTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	frames := 200
	tracks := randomTracks(rng, 6, frames)
	cfg := DefaultConfig()
	prev := -1
	for n := 0; n <= len(tracks); n++ {
		vss, err := Extract(tracks[:n], event.AccidentModel{}, frames, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c := CountTS(vss); c < prev {
			t.Fatalf("TS count decreased: %d → %d at n=%d", prev, c, n)
		} else {
			prev = c
		}
	}
}

// TestOverlapContainsNonOverlapWindows: with Step 1 every
// non-overlapping window's frame range also appears.
func TestOverlapContainsNonOverlapWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	frames := 150
	tracks := randomTracks(rng, 4, frames)
	nonOverlap, err := Extract(tracks, event.AccidentModel{}, frames, Config{SampleRate: 5, WindowSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Extract(tracks, event.AccidentModel{}, frames, Config{SampleRate: 5, WindowSize: 3, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranges := make(map[[2]int]bool)
	for _, vs := range overlap {
		ranges[[2]int{vs.StartFrame, vs.EndFrame}] = true
	}
	for _, vs := range nonOverlap {
		if !ranges[[2]int{vs.StartFrame, vs.EndFrame}] {
			t.Fatalf("window [%d,%d] missing from overlapped extraction", vs.StartFrame, vs.EndFrame)
		}
	}
	if len(overlap) < len(nonOverlap) {
		t.Fatal("overlapped extraction produced fewer windows")
	}
}
