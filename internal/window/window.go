// Package window implements the paper's §5.1 sliding-window
// extraction of Video Sequences (VSs) from a clip. The clip's frames
// are sampled on a fixed grid (the paper uses 5 frames per sampling
// point); a window of a fixed number of sampling points slides along
// the grid, and each window becomes one VS. Every trajectory that is
// present at all sampling points of a window contributes one
// Trajectory Sequence (TS) — the MIL instance — whose feature matrix
// is the per-point event-model vector α = [α₁, …, α_n].
package window

import (
	"errors"
	"fmt"
	"sort"

	"milvideo/internal/event"
	"milvideo/internal/track"
)

// Config controls the extraction.
type Config struct {
	// SampleRate is the sampling interval in frames per point (paper:
	// 5).
	SampleRate int
	// WindowSize is the number of sampling points per VS (paper: 3,
	// covering a ~15-frame car-crash event).
	WindowSize int
	// Step is the window stride in sampling points. The paper's
	// Fig. 4 slides one step a time; its reported TS counts are
	// consistent with non-overlapping windows, so the default (0)
	// means Step = WindowSize. Set 1 for fully overlapped windows.
	Step int
}

// DefaultConfig returns the paper's parameters: rate 5, window 3,
// non-overlapping stride.
func DefaultConfig() Config { return Config{SampleRate: 5, WindowSize: 3} }

// Normalized validates the configuration and fills in defaults (Step =
// WindowSize when zero). It is what Extract applies internally.
func (c Config) Normalized() (Config, error) {
	if c.SampleRate <= 0 {
		return c, errors.New("window: SampleRate must be positive")
	}
	if c.WindowSize <= 0 {
		return c, errors.New("window: WindowSize must be positive")
	}
	if c.Step == 0 {
		c.Step = c.WindowSize
	}
	if c.Step < 0 {
		return c, errors.New("window: Step must be non-negative")
	}
	return c, nil
}

// TS is a Trajectory Sequence: one vehicle's samples across one
// window — a MIL instance.
type TS struct {
	// TrackID identifies the source trajectory.
	TrackID int
	// Class is the vehicle's PCA body class ("car", "truck", …) when a
	// classifier has annotated it; empty when unclassified. Old
	// persisted records decode with the zero value, which predicate
	// class leaves simply never match.
	Class string
	// Samples are the raw per-point samples, length == WindowSize.
	Samples []event.Sample
	// Vectors are the per-point event feature vectors, length ==
	// WindowSize, each of the model's dimension.
	Vectors [][]float64
}

// Flat returns the TS's flattened instance vector (the concatenation
// of the per-point vectors), the representation fed to the One-class
// SVM — "the One-class SVM learns from the entire trajectory sequence
// within the window" (§5.3).
func (ts TS) Flat() []float64 {
	var out []float64
	for _, v := range ts.Vectors {
		out = append(out, v...)
	}
	return out
}

// VS is a Video Sequence: one sliding window over the clip — a MIL
// bag containing the TSs of every vehicle present throughout it.
type VS struct {
	// Index is the window's ordinal position.
	Index int
	// StartFrame and EndFrame delimit the covered frame interval
	// (inclusive ends at the last sampling point).
	StartFrame, EndFrame int
	// TSs are the contained trajectory sequences.
	TSs []TS
}

// Extract builds the VSs of a clip from its tracked trajectories
// under the given event model. totalFrames bounds the sampling grid
// (windows never extend past the clip). VSs with no TSs are still
// returned — an empty road window is a legitimate (irrelevant)
// retrieval result — so callers see the same database size regardless
// of traffic density; use NonEmpty to filter when needed.
func Extract(tracks []*track.Track, model event.Model, totalFrames int, cfg Config) ([]VS, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("window: nil model")
	}
	if totalFrames <= 0 {
		return nil, errors.New("window: totalFrames must be positive")
	}
	samples, err := event.SampleTracks(tracks, cfg.SampleRate)
	if err != nil {
		return nil, err
	}
	// Index samples per track by grid position for O(1) window tests.
	type gridSeries struct {
		id    int
		byPos map[int]event.Sample // grid position (frame / rate) → sample
	}
	var series []gridSeries
	ids := make([]int, 0, len(samples))
	for id := range samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		byPos := make(map[int]event.Sample, len(samples[id]))
		for _, s := range samples[id] {
			byPos[s.Frame/cfg.SampleRate] = s
		}
		series = append(series, gridSeries{id: id, byPos: byPos})
	}

	lastGrid := (totalFrames - 1) / cfg.SampleRate // last grid position in the clip
	var out []VS
	idx := 0
	for p0 := 0; p0+cfg.WindowSize-1 <= lastGrid; p0 += cfg.Step {
		vs := VS{
			Index:      idx,
			StartFrame: p0 * cfg.SampleRate,
			EndFrame:   (p0 + cfg.WindowSize - 1) * cfg.SampleRate,
		}
		for _, gs := range series {
			ts := TS{TrackID: gs.id}
			ok := true
			for k := 0; k < cfg.WindowSize; k++ {
				s, present := gs.byPos[p0+k]
				if !present {
					ok = false
					break
				}
				ts.Samples = append(ts.Samples, s)
				ts.Vectors = append(ts.Vectors, model.Vector(s, cfg.SampleRate))
			}
			if ok {
				vs.TSs = append(vs.TSs, ts)
			}
		}
		out = append(out, vs)
		idx++
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("window: clip of %d frames too short for window of %d points at rate %d",
			totalFrames, cfg.WindowSize, cfg.SampleRate)
	}
	return out, nil
}

// AnnotateClasses stamps each TS with its track's vehicle class from
// a classifier's trackID → class map (e.g. core.ClassifyTracks).
// Tracks absent from the map keep an empty class. It mutates the VSs
// in place and returns the number of TSs annotated.
func AnnotateClasses(vss []VS, classes map[int]string) int {
	n := 0
	for i := range vss {
		for j := range vss[i].TSs {
			if c, ok := classes[vss[i].TSs[j].TrackID]; ok && c != "" {
				vss[i].TSs[j].Class = c
				n++
			}
		}
	}
	return n
}

// NonEmpty filters to the VSs that contain at least one TS.
func NonEmpty(vss []VS) []VS {
	out := make([]VS, 0, len(vss))
	for _, vs := range vss {
		if len(vs.TSs) > 0 {
			out = append(out, vs)
		}
	}
	return out
}

// CountTS returns the total number of TSs across the VSs — the
// statistic the paper reports per clip (109 and 168).
func CountTS(vss []VS) int {
	n := 0
	for _, vs := range vss {
		n += len(vs.TSs)
	}
	return n
}
