package window

import (
	"testing"

	"milvideo/internal/event"
	"milvideo/internal/geom"
	"milvideo/internal/track"
)

// line builds a track moving at constant velocity from frame start for
// n frames.
func line(id, start, n int, x0, vx float64) *track.Track {
	tr := &track.Track{ID: id, Confirmed: true}
	for i := 0; i < n; i++ {
		tr.Observations = append(tr.Observations, track.Observation{
			Frame:    start + i,
			Centroid: geom.Pt(x0+vx*float64(i), 50),
		})
	}
	return tr
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.SampleRate != 5 || c.WindowSize != 3 || c.Step != 0 {
		t.Fatalf("defaults: %+v", c)
	}
	n, err := c.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Step != 3 {
		t.Fatalf("normalized step: %d", n.Step)
	}
}

func TestExtractBasicWindows(t *testing.T) {
	// 60 frames, rate 5 → grid positions 0..11; window 3 step 3 →
	// windows at 0,3,6,9 → 4 VSs.
	tr := line(0, 0, 60, 10, 2)
	vss, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vss) != 4 {
		t.Fatalf("got %d VSs", len(vss))
	}
	if vss[0].StartFrame != 0 || vss[0].EndFrame != 10 {
		t.Fatalf("window 0 frames: %d-%d", vss[0].StartFrame, vss[0].EndFrame)
	}
	if vss[1].StartFrame != 15 || vss[1].EndFrame != 25 {
		t.Fatalf("window 1 frames: %d-%d", vss[1].StartFrame, vss[1].EndFrame)
	}
	// Track covers 0..59, so all windows contain its TS.
	for i, vs := range vss {
		if len(vs.TSs) != 1 {
			t.Fatalf("window %d has %d TSs", i, len(vs.TSs))
		}
		ts := vs.TSs[0]
		if len(ts.Samples) != 3 || len(ts.Vectors) != 3 {
			t.Fatalf("TS shape: %d samples %d vectors", len(ts.Samples), len(ts.Vectors))
		}
		if got := len(ts.Flat()); got != 9 {
			t.Fatalf("flat dim: %d", got)
		}
		if vs.Index != i {
			t.Fatalf("index: %d", vs.Index)
		}
	}
}

func TestExtractOverlappingWindows(t *testing.T) {
	tr := line(0, 0, 60, 10, 2)
	cfg := Config{SampleRate: 5, WindowSize: 3, Step: 1}
	vss, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Grid 0..11, windows starting 0..9 → 10 VSs.
	if len(vss) != 10 {
		t.Fatalf("got %d VSs", len(vss))
	}
	if vss[1].StartFrame != 5 {
		t.Fatalf("overlap start: %d", vss[1].StartFrame)
	}
}

func TestExtractPartialTrackExcluded(t *testing.T) {
	// Track present only for the first 12 frames: it covers grid
	// positions 0,1,2 (frames 0,5,10) but not window 2's positions.
	short := line(0, 0, 12, 10, 2)
	long := line(1, 0, 60, 10, 1)
	vss, err := Extract([]*track.Track{short, long}, event.AccidentModel{}, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vss[0].TSs) != 2 {
		t.Fatalf("window 0: %d TSs", len(vss[0].TSs))
	}
	if len(vss[1].TSs) != 1 || vss[1].TSs[0].TrackID != 1 {
		t.Fatalf("window 1 should only keep the long track: %+v", vss[1].TSs)
	}
	if CountTS(vss) != 2+1+1+1 {
		t.Fatalf("CountTS: %d", CountTS(vss))
	}
}

func TestExtractEmptyWindowsKept(t *testing.T) {
	// No tracks at all: windows still exist, all empty.
	vss, err := Extract(nil, event.AccidentModel{}, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vss) != 4 {
		t.Fatalf("got %d VSs", len(vss))
	}
	for _, vs := range vss {
		if len(vs.TSs) != 0 {
			t.Fatal("phantom TS")
		}
	}
	if got := NonEmpty(vss); len(got) != 0 {
		t.Fatalf("NonEmpty: %d", len(got))
	}
}

func TestExtractDeterministicTSOrder(t *testing.T) {
	a := line(3, 0, 60, 10, 2)
	b := line(1, 0, 60, 30, 2)
	vss, err := Extract([]*track.Track{a, b}, event.AccidentModel{}, 60, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if vss[0].TSs[0].TrackID != 1 || vss[0].TSs[1].TrackID != 3 {
		t.Fatalf("TS order not by track ID: %d, %d", vss[0].TSs[0].TrackID, vss[0].TSs[1].TrackID)
	}
}

func TestExtractErrors(t *testing.T) {
	tr := line(0, 0, 60, 10, 2)
	if _, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 60, Config{SampleRate: 0, WindowSize: 3}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 60, Config{SampleRate: 5, WindowSize: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 60, Config{SampleRate: 5, WindowSize: 3, Step: -1}); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := Extract([]*track.Track{tr}, nil, 60, DefaultConfig()); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 0, DefaultConfig()); err == nil {
		t.Fatal("zero frames accepted")
	}
	// Clip shorter than one window.
	if _, err := Extract([]*track.Track{tr}, event.AccidentModel{}, 8, DefaultConfig()); err == nil {
		t.Fatal("too-short clip accepted")
	}
}

func TestFlatMatchesModelDim(t *testing.T) {
	tr := line(0, 0, 60, 10, 2)
	for _, m := range []event.Model{event.AccidentModel{}, event.SpeedingModel{RefSpeed: 2}, event.UTurnModel{}} {
		vss, err := Extract([]*track.Track{tr}, m, 60, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want := 3 * m.Dim()
		for _, vs := range vss {
			for _, ts := range vs.TSs {
				if len(ts.Flat()) != want {
					t.Fatalf("%s: flat dim %d, want %d", m.Name(), len(ts.Flat()), want)
				}
			}
		}
	}
}
