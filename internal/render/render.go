// Package render rasterizes a sim.Scene into grayscale video frames.
// It is the camera of the synthetic substrate: the vision pipeline
// downstream (background modeling, SPCPE segmentation, tracking) sees
// only these pixels, never the simulator's ground truth, so the whole
// reproduction runs on the same kind of input the paper's system
// consumed.
//
// The rendered scene consists of a static background (road surface
// with a mild illumination gradient and lane markings, plus the
// scene's wall rectangles) over which vehicle rectangles are drawn,
// with per-frame sensor noise on top.
package render

import (
	"fmt"
	"math"
	"math/rand"

	"milvideo/internal/frame"
	"milvideo/internal/sim"
)

// Options controls the renderer.
type Options struct {
	// NoiseAmp is the amplitude of per-pixel uniform sensor noise in
	// gray levels. 0 disables noise.
	NoiseAmp int
	// Seed drives the noise generator; rendering is deterministic for
	// a fixed seed.
	Seed int64
	// RoadShade and WallShade set the background intensities.
	RoadShade, WallShade uint8
	// LightDrift, when positive, sweeps global illumination
	// sinusoidally by ±LightDrift gray levels over the clip —
	// simulating the slow lighting changes (clouds, dusk) that defeat
	// a static background model and motivate adaptive background
	// maintenance (segment.Options.Adaptive).
	LightDrift float64
}

// DefaultOptions returns the rendering parameters used by the
// experiments: a visible but mild noise floor.
func DefaultOptions() Options {
	return Options{NoiseAmp: 6, Seed: 11, RoadShade: 90, WallShade: 40}
}

// Background builds the static background frame for a scene: road
// surface with a vertical illumination gradient, lane markings and
// the scene's wall regions.
func Background(s *sim.Scene, opt Options) *frame.Gray {
	bg := frame.NewGray(s.W, s.H)
	for y := 0; y < s.H; y++ {
		// Gentle vertical illumination gradient (±10 gray levels)
		// so the background is not trivially uniform.
		shade := int(opt.RoadShade) + (y-s.H/2)/12
		if shade < 0 {
			shade = 0
		} else if shade > 255 {
			shade = 255
		}
		for x := 0; x < s.W; x++ {
			bg.Set(x, y, uint8(shade))
		}
	}
	// Dashed center-line markings along the horizontal midline give
	// the background fine structure that background subtraction must
	// cancel out.
	for x := 0; x < s.W; x += 20 {
		bg.FillRect(x, s.H/2-1, x+10, s.H/2+1, opt.RoadShade+60)
	}
	for _, w := range s.Walls {
		bg.FillRect(int(w.Min.X), int(w.Min.Y), int(w.Max.X), int(w.Max.Y), opt.WallShade)
	}
	return bg
}

// Frame renders the scene state at frame index i over the supplied
// background (which is not modified). The RNG provides the sensor
// noise for this frame.
func Frame(s *sim.Scene, bg *frame.Gray, i int, rng *rand.Rand, opt Options) (*frame.Gray, error) {
	if i < 0 || i >= len(s.Frames) {
		return nil, fmt.Errorf("render: frame index %d out of range [0,%d)", i, len(s.Frames))
	}
	// Pool-backed clone of the background: rendering overwrites the
	// whole frame, and batch ingestion recycles clip frames, so the
	// steady state re-draws into the same buffers.
	img := frame.GetGray(bg.W, bg.H)
	copy(img.Pix, bg.Pix)
	for _, v := range s.Frames[i].Vehicles {
		r := v.MBR()
		img.FillRect(int(r.Min.X), int(r.Min.Y), int(r.Max.X), int(r.Max.Y), v.Shade)
		// A slightly darker roof stripe breaks up the rectangle so
		// SPCPE sees non-uniform vehicle bodies.
		roof := v.Shade - v.Shade/4
		img.FillRect(int(r.Min.X)+2, int(r.Min.Y)+2, int(r.Max.X)-2, int(r.Max.Y)-2, roof)
	}
	if opt.LightDrift > 0 {
		// One full illumination cycle over the clip.
		phase := 2 * math.Pi * float64(i) / float64(len(s.Frames))
		shift := int(opt.LightDrift * math.Sin(phase))
		if shift != 0 {
			for p, v := range img.Pix {
				n := int(v) + shift
				if n < 0 {
					n = 0
				} else if n > 255 {
					n = 255
				}
				img.Pix[p] = uint8(n)
			}
		}
	}
	if opt.NoiseAmp > 0 {
		img.AddNoise(rng, opt.NoiseAmp)
	}
	return img, nil
}

// Stream renders the scene frame by frame in display order, invoking
// emit with each finished frame as soon as it exists — the renderer
// stage of a streaming ingestion pipeline, where a downstream consumer
// can segment frame i while frame i+1 is still being drawn. Ownership
// of each frame passes to emit; frames are pool-backed
// (frame.GetGray), so a consumer that discards them may hand them to
// frame.PutGray. Rendering is sequential by construction (the noise
// RNG advances per frame), so the emitted pixels are identical to
// Video's for the same options. An error from emit aborts the render
// and is returned verbatim.
func Stream(s *sim.Scene, opt Options, emit func(i int, f *frame.Gray) error) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("render: invalid scene: %w", err)
	}
	bg := Background(s, opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := range s.Frames {
		f, err := Frame(s, bg, i, rng, opt)
		if err != nil {
			return err
		}
		if err := emit(i, f); err != nil {
			return err
		}
	}
	return nil
}

// Video renders the whole scene into a frame.Video clip.
func Video(s *sim.Scene, opt Options) (*frame.Video, error) {
	v := &frame.Video{FPS: s.FPS, Name: s.Name, Frames: make([]*frame.Gray, 0, len(s.Frames))}
	err := Stream(s, opt, func(i int, f *frame.Gray) error {
		v.Frames = append(v.Frames, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("render: produced invalid video: %w", err)
	}
	return v, nil
}
