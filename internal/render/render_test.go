package render

import (
	"math/rand"
	"testing"

	"milvideo/internal/frame"
	"milvideo/internal/sim"
)

func scene(t *testing.T) *sim.Scene {
	t.Helper()
	s, err := sim.Tunnel(sim.TunnelConfig{Frames: 120, Seed: 3, SpawnEvery: 40, WallCrash: 1, FPS: 25})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBackgroundStructure(t *testing.T) {
	s := scene(t)
	opt := DefaultOptions()
	bg := Background(s, opt)
	if bg.W != s.W || bg.H != s.H {
		t.Fatalf("size: %dx%d", bg.W, bg.H)
	}
	// Wall pixels carry the wall shade.
	w := s.Walls[0]
	cx, cy := int((w.Min.X+w.Max.X)/2), int((w.Min.Y+w.Max.Y)/2)
	if bg.At(cx, cy) != opt.WallShade {
		t.Fatalf("wall shade: got %d want %d", bg.At(cx, cy), opt.WallShade)
	}
	// Road area carries approximately the road shade.
	road := bg.At(s.W/2, 110)
	if road < opt.RoadShade-15 || road > opt.RoadShade+15 {
		t.Fatalf("road shade: got %d", road)
	}
}

func TestFrameDrawsVehicles(t *testing.T) {
	s := scene(t)
	opt := Options{NoiseAmp: 0, RoadShade: 90, WallShade: 40}
	bg := Background(s, opt)
	// Find a frame with at least one fully visible vehicle.
	idx := -1
	var vs sim.VehicleState
	for i, f := range s.Frames {
		for _, v := range f.Vehicles {
			if v.Pos.X > 30 && v.Pos.X < float64(s.W)-30 {
				idx, vs = i, v
				break
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		t.Fatal("no visible vehicle found")
	}
	img, err := Frame(s, bg, idx, rand.New(rand.NewSource(1)), opt)
	if err != nil {
		t.Fatal(err)
	}
	// The pixel at the vehicle border (edge ring keeps original shade)
	// must differ from the background.
	px := img.At(int(vs.Pos.X), int(vs.MBR().Min.Y)+1)
	if px == bg.At(int(vs.Pos.X), int(vs.MBR().Min.Y)+1) {
		t.Fatalf("vehicle not drawn: pixel %d equals background", px)
	}
	// Background must be untouched outside the vehicles.
	if img.At(2, 2) != bg.At(2, 2) {
		t.Fatal("noise-free frame altered the background")
	}
	// bg itself must not have been mutated.
	fresh := Background(s, opt)
	for i := range bg.Pix {
		if bg.Pix[i] != fresh.Pix[i] {
			t.Fatal("Frame mutated the shared background")
		}
	}
}

func TestFrameIndexErrors(t *testing.T) {
	s := scene(t)
	opt := DefaultOptions()
	bg := Background(s, opt)
	rng := rand.New(rand.NewSource(1))
	if _, err := Frame(s, bg, -1, rng, opt); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := Frame(s, bg, len(s.Frames), rng, opt); err == nil {
		t.Fatal("overflow index accepted")
	}
}

func TestVideoRendersWholeScene(t *testing.T) {
	s := scene(t)
	v, err := Video(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != len(s.Frames) {
		t.Fatalf("length: %d vs %d", v.Len(), len(s.Frames))
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Name != s.Name || v.FPS != s.FPS {
		t.Fatal("metadata not propagated")
	}
}

func TestVideoDeterminism(t *testing.T) {
	s := scene(t)
	a, err := Video(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Video(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatalf("frame %d differs at pixel %d", i, j)
			}
		}
	}
}

func TestVideoRejectsInvalidScene(t *testing.T) {
	s := scene(t)
	s.FPS = 0
	if _, err := Video(s, DefaultOptions()); err == nil {
		t.Fatal("invalid scene accepted")
	}
}

func TestNoiseChangesPixelsButNotStructure(t *testing.T) {
	s := scene(t)
	clean, err := Video(s, Options{NoiseAmp: 0, Seed: 1, RoadShade: 90, WallShade: 40})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Video(s, Options{NoiseAmp: 8, Seed: 1, RoadShade: 90, WallShade: 40})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := frame.AbsDiff(clean.Frames[0], noisy.Frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if diff.CountAbove(1) == 0 {
		t.Fatal("noise had no effect")
	}
	// Noise is bounded by the amplitude.
	for _, p := range diff.Pix {
		if p > 8 {
			t.Fatalf("noise exceeded amplitude: %d", p)
		}
	}
}
