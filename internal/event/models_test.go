package event

// Tests for the retbench taxonomy's event models: feature semantics
// (the eventful case scores strictly above the normal case in at
// least one component), edge-case guards (lone vehicles, unobserved
// motion, zero flow) and registry round-trips.

import (
	"math"
	"reflect"
	"testing"

	"milvideo/internal/geom"
)

// moving builds a sample cruising east at v px/frame (rate 5), with
// observed motion history and the given nearest-neighbour distance.
func moving(v, mindist float64) Sample {
	return Sample{
		Motion:      geom.V(v*5, 0),
		MotionValid: true,
		PrevMotion:  geom.V(v*5, 0),
		PrevValid:   true,
		MinDist:     mindist,
	}
}

func TestSuddenStopModelSemantics(t *testing.T) {
	m := SuddenStopModel{}
	cruise := moving(2.5, 100)
	stop := cruise
	stop.Motion = geom.V(0.5, 0) // 2.5 → 0.1 px/frame between points
	vStop := m.Vector(stop, 5)
	vCruise := m.Vector(cruise, 5)
	if len(vStop) != m.Dim() {
		t.Fatalf("dim %d, want %d", len(vStop), m.Dim())
	}
	if vStop[0] <= vCruise[0] || vStop[1] <= vCruise[1] {
		t.Fatalf("sudden stop %v must outscore steady cruise %v", vStop, vCruise)
	}
	// Unobserved previous motion must not fake a Δv spike.
	second := Sample{Motion: geom.V(12.5, 0), MotionValid: true, MinDist: 100}
	if v := m.Vector(second, 5); v[0] != 0 || v[1] != 0 {
		t.Fatalf("second sample scored %v despite PrevValid=false", v)
	}
}

func TestWrongWayModelSemantics(t *testing.T) {
	m := WrongWayModel{} // default flow (1, 0)
	with := moving(2.5, 100)
	against := with
	against.Motion = geom.V(-12.5, 0)
	vW := m.Vector(with, 5)
	vA := m.Vector(against, 5)
	if vW[0] != 0 || vW[1] != 0 {
		t.Fatalf("flow-aligned motion scored %v, want zeros", vW)
	}
	if vA[0] != 1 || vA[1] != 2.5 {
		t.Fatalf("head-on opposition scored %v, want [1 2.5]", vA)
	}
	// Stationary vehicles have no direction to oppose.
	still := Sample{MotionValid: true, MinDist: 100}
	if v := m.Vector(still, 5); v[0] != 0 || v[1] != 0 {
		t.Fatalf("stationary vehicle scored %v, want zeros", v)
	}
	// A slowed oncoming-lane vehicle keeps its heading: crossing flow
	// (perpendicular) scores zero, only opposed components count.
	perp := moving(2.5, 100)
	perp.Motion = geom.V(0, 12.5)
	if v := m.Vector(perp, 5); v[0] != 0 {
		t.Fatalf("perpendicular motion scored %v, want zero opposition", v)
	}
}

func TestTailgateModelSemantics(t *testing.T) {
	m := TailgateModel{}
	glued := moving(2.5, 12)  // the spawner's 11-14px gap
	normal := moving(2.5, 45) // car-following equilibrium
	vG := m.Vector(glued, 5)
	vN := m.Vector(normal, 5)
	if vG[0] <= vN[0] || vG[1] <= vN[1] {
		t.Fatalf("glued gap %v must outscore equilibrium gap %v", vG, vN)
	}
	// A lone vehicle cannot tailgate.
	lone := moving(2.5, math.Inf(1))
	if v := m.Vector(lone, 5); v[0] != 0 || v[1] != 0 {
		t.Fatalf("lone vehicle scored %v, want zeros", v)
	}
	// The speed weighting separates a moving tailgater from a queue at
	// rest with the same gap.
	queued := moving(0, 12)
	if vq := m.Vector(queued, 5); vq[1] >= vG[1] {
		t.Fatalf("queue at rest %v must score below a tailgater at speed %v", vq, vG)
	}
}

func TestNearMissModelSemantics(t *testing.T) {
	m := NearMissModel{}
	// Fast and close: the overtake pass.
	pass := moving(4.4, 15)
	// Close but slow: a queue.
	queue := moving(0.3, 15)
	// Fast but far: normal cruising.
	cruise := moving(4.4, 80)
	vP := m.Vector(pass, 5)
	if vP[0] <= m.Vector(queue, 5)[0] {
		t.Fatalf("fast close pass %v must outscore a slow queue", vP)
	}
	if vP[0] <= m.Vector(cruise, 5)[0] {
		t.Fatalf("fast close pass %v must outscore distant cruising", vP)
	}
	// The swerve component: direction change at speed.
	swerve := moving(4.4, 15)
	swerve.PrevMotion = geom.V(22, 0)
	swerve.Motion = geom.V(21, 12) // veering off at speed
	if v := m.Vector(swerve, 5); v[1] <= vP[1] {
		t.Fatalf("swerve %v must add direction-change signal over straight pass %v", v, vP)
	}
	lone := moving(4.4, math.Inf(1))
	if v := m.Vector(lone, 5); v[0] != 0 {
		t.Fatalf("lone vehicle proximity scored %v, want zero", v)
	}
}

func TestStalledModelSemantics(t *testing.T) {
	m := StalledModel{}
	dead := moving(0, 100)
	crawl := moving(0.2, 100) // the cruise() congestion floor
	cruise := moving(2.5, 100)
	vD := m.Vector(dead, 5)
	vCrawl := m.Vector(crawl, 5)
	vCruise := m.Vector(cruise, 5)
	if vD[0] != 1 {
		t.Fatalf("full stop inverse-speed = %v, want saturation at 1", vD[0])
	}
	if vD[0] <= vCrawl[0] || vCrawl[0] <= vCruise[0] {
		t.Fatalf("inverse speed must order dead %v > crawl %v > cruise %v", vD, vCrawl, vCruise)
	}
	// A track's first sample has no observed motion — that zero is
	// "unknown", not a standstill, and must not score.
	first := Sample{MinDist: 100}
	if v := m.Vector(first, 5); v[0] != 0 || v[1] != 0 {
		t.Fatalf("unobserved motion scored %v, want zeros", v)
	}
}

// TestModelRegistryRoundTrip: every taxonomy model is reachable by its
// persisted name, and Name() round-trips.
func TestModelRegistryRoundTrip(t *testing.T) {
	names := []string{
		"accident", "speeding", "u-turn",
		"sudden-stop", "wrong-way", "tailgating", "near-miss", "stalled",
	}
	for _, name := range names {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("ModelByName(%q).Name() = %q", name, m.Name())
		}
		if m.Dim() <= 0 {
			t.Fatalf("%q has non-positive dim", name)
		}
		if got := len(m.Vector(moving(2.5, 30), 5)); got != m.Dim() {
			t.Fatalf("%q Vector returned %d components, Dim says %d", name, got, m.Dim())
		}
	}
}

// TestModelVectorsDeterministic: same sample, same vector — models
// hold no hidden state.
func TestModelVectorsDeterministic(t *testing.T) {
	models := []Model{
		SuddenStopModel{}, WrongWayModel{}, TailgateModel{},
		NearMissModel{}, StalledModel{},
	}
	s := moving(3.1, 17)
	s.PrevMotion = geom.V(14, 3)
	for _, m := range models {
		a := m.Vector(s, 5)
		b := m.Vector(s, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s not deterministic: %v vs %v", m.Name(), a, b)
		}
	}
}
