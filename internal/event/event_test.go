package event

import (
	"errors"
	"math"
	"testing"

	"milvideo/internal/geom"
	"milvideo/internal/track"
)

func TestSampleKinematics(t *testing.T) {
	s := Sample{
		Motion:     geom.V(10, 0),
		PrevMotion: geom.V(0, 10),
		PrevValid:  true,
		MinDist:    5,
	}
	if v := s.Speed(5); v != 2 {
		t.Fatalf("Speed: %v", v)
	}
	if d := s.VDiff(5); d != 0 { // same magnitude, different direction
		t.Fatalf("VDiff: %v", d)
	}
	if th := s.Theta(); math.Abs(th-math.Pi/2) > 1e-12 {
		t.Fatalf("Theta: %v", th)
	}
	if s.Speed(0) != 0 || s.VDiff(0) != 0 {
		t.Fatal("zero rate must yield zero kinematics")
	}
}

func TestAccidentModelVector(t *testing.T) {
	m := AccidentModel{}
	s := Sample{
		Motion:     geom.V(0, 0),
		PrevMotion: geom.V(20, 0),
		PrevValid:  true,
		MinDist:    4,
	}
	v := m.Vector(s, 5)
	if len(v) != m.Dim() || m.Dim() != 3 {
		t.Fatalf("dim: %v", v)
	}
	if v[0] != 0.25 {
		t.Fatalf("1/mdist: %v", v[0])
	}
	if v[1] != 4 { // |0 − 20|/5
		t.Fatalf("vdiff: %v", v[1])
	}
	if v[2] != 0 { // zero current motion: no turn defined
		t.Fatalf("theta: %v", v[2])
	}
	// Lone vehicle: inverse distance contributes 0, not Inf.
	alone := m.Vector(Sample{MinDist: math.Inf(1)}, 5)
	if alone[0] != 0 {
		t.Fatalf("lone vehicle inv dist: %v", alone[0])
	}
	// Epsilon clamps near-zero distances.
	tight := m.Vector(Sample{MinDist: 0.001}, 5)
	if tight[0] > 1 {
		t.Fatalf("eps clamp failed: %v", tight[0])
	}
	custom := AccidentModel{Eps: 0.5}
	if v := custom.Vector(Sample{MinDist: 0.001}, 5); v[0] != 2 {
		t.Fatalf("custom eps: %v", v[0])
	}
	if m.Name() != "accident" {
		t.Fatal("name")
	}
}

func TestSpeedingModelVector(t *testing.T) {
	m := SpeedingModel{RefSpeed: 2}
	fast := m.Vector(Sample{Motion: geom.V(30, 0)}, 5) // speed 6
	if len(fast) != m.Dim() {
		t.Fatal("dim")
	}
	if fast[0] != 3 || fast[1] != 4 {
		t.Fatalf("fast: %v", fast)
	}
	slow := m.Vector(Sample{Motion: geom.V(5, 0)}, 5) // speed 1
	if slow[1] != 0 {
		t.Fatalf("no excess for slow vehicle: %v", slow)
	}
	// Zero RefSpeed falls back to 1.
	d := SpeedingModel{}
	if v := d.Vector(Sample{Motion: geom.V(5, 0)}, 5); v[0] != 1 {
		t.Fatalf("default ref: %v", v)
	}
}

func TestUTurnModelVector(t *testing.T) {
	m := UTurnModel{}
	s := Sample{Motion: geom.V(-10, 0), PrevMotion: geom.V(10, 0)}
	v := m.Vector(s, 5)
	if math.Abs(v[0]-math.Pi) > 1e-12 {
		t.Fatalf("theta: %v", v[0])
	}
	if math.Abs(v[1]-math.Pi*2) > 1e-12 { // θ · speed(=2)
		t.Fatalf("weighted: %v", v[1])
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"accident", "speeding", "u-turn"} {
		m, err := ModelByName(name)
		if err != nil || m.Name() != name {
			t.Fatalf("%s: %v %v", name, m, err)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// mkTrack builds a track with observations every frame from the given
// positions starting at frame start.
func mkTrack(id, start int, pts ...geom.Point) *track.Track {
	tr := &track.Track{ID: id, Confirmed: true}
	for i, p := range pts {
		tr.Observations = append(tr.Observations, track.Observation{Frame: start + i, Centroid: p})
	}
	return tr
}

func TestSampleTracksGridAlignment(t *testing.T) {
	// Track covering frames 3..27; grid at rate 5 → samples at 5,10,…,25.
	var pts []geom.Point
	for i := 0; i <= 24; i++ {
		pts = append(pts, geom.Pt(float64(10+2*i), 50))
	}
	tr := mkTrack(0, 3, pts...)
	samples, err := SampleTracks([]*track.Track{tr}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ss := samples[0]
	if len(ss) != 5 {
		t.Fatalf("samples: %d", len(ss))
	}
	if ss[0].Frame != 5 || ss[4].Frame != 25 {
		t.Fatalf("grid: %d..%d", ss[0].Frame, ss[4].Frame)
	}
	// First sample has zero motion; subsequent motions are 10 px per
	// 5 frames (2 px/frame × 5).
	if ss[0].Motion != geom.V(0, 0) {
		t.Fatalf("first motion: %v", ss[0].Motion)
	}
	if ss[1].Motion != geom.V(10, 0) {
		t.Fatalf("second motion: %v", ss[1].Motion)
	}
	if ss[2].PrevMotion != ss[1].Motion {
		t.Fatal("prev motion chain broken")
	}
	// Lone track: MinDist is +Inf everywhere.
	for _, s := range ss {
		if !math.IsInf(s.MinDist, 1) {
			t.Fatalf("lone track mindist: %v", s.MinDist)
		}
	}
}

func TestSampleTracksMinDist(t *testing.T) {
	a := mkTrack(0, 0,
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(5, 0))
	b := mkTrack(1, 0,
		geom.Pt(0, 8), geom.Pt(1, 8), geom.Pt(2, 8), geom.Pt(3, 8), geom.Pt(4, 8), geom.Pt(5, 8))
	samples, err := SampleTracks([]*track.Track{a, b}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := samples[0][0].MinDist; d != 8 {
		t.Fatalf("mindist: %v", d)
	}
	if d := samples[1][0].MinDist; d != 8 {
		t.Fatalf("symmetric mindist: %v", d)
	}
}

func TestSampleTracksErrorsAndEdgeCases(t *testing.T) {
	if _, err := SampleTracks(nil, 0); !errors.Is(err, ErrBadRate) {
		t.Fatalf("rate 0: %v", err)
	}
	// Track shorter than one grid interval may still produce one
	// sample if it crosses a grid frame.
	tr := mkTrack(0, 4, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0))
	samples, err := SampleTracks([]*track.Track{tr}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples[0]) != 1 || samples[0][0].Frame != 5 {
		t.Fatalf("short track: %+v", samples[0])
	}
	// Track entirely between grid frames yields nothing.
	tr2 := mkTrack(7, 6, geom.Pt(0, 0), geom.Pt(1, 0))
	samples, err = SampleTracks([]*track.Track{tr2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := samples[7]; ok {
		t.Fatal("off-grid track sampled")
	}
}

func TestAccidentSignatureOnSyntheticCrash(t *testing.T) {
	// A vehicle that moves fast then stops dead shows a large vdiff
	// spike at the stopping sample.
	var pts []geom.Point
	x := 0.0
	for i := 0; i < 15; i++ { // fast
		pts = append(pts, geom.Pt(x, 0))
		x += 4
	}
	for i := 0; i < 15; i++ { // stopped
		pts = append(pts, geom.Pt(x, 0))
	}
	tr := mkTrack(0, 0, pts...)
	samples, _ := SampleTracks([]*track.Track{tr}, 5)
	m := AccidentModel{}
	maxV := 0.0
	for _, s := range samples[0] {
		v := m.Vector(s, 5)
		if v[1] > maxV {
			maxV = v[1]
		}
	}
	if maxV < 3 {
		t.Fatalf("crash vdiff signature too weak: %v", maxV)
	}
}
