// Package event implements the paper's §4 semantic event modeling.
// Tracked trajectories are sampled at a fixed rate (the paper uses 5
// frames per checking point); at each sampling point the package
// computes the vehicle's motion vector, speed change, direction
// change and minimum distance to its nearest neighbour, and an event
// Model turns those raw quantities into the feature vector the
// learning stage consumes.
//
// The accident model is the paper's α_i = [1/mdist_i, vdiff_i, θ_i].
// Additional models for U-turns and speeding realize the paper's
// claim that "this event model may also be adjusted to detect
// U-turns, speeding and any other event that involves the abnormal
// behavior of a vehicle".
package event

import (
	"errors"
	"fmt"
	"math"

	"milvideo/internal/geom"
	"milvideo/internal/track"
)

// Sample is the raw spatio-temporal state of one trajectory at one
// sampling point.
type Sample struct {
	// Frame is the frame index of this sampling point.
	Frame int
	// Pos is the vehicle centroid.
	Pos geom.Point
	// Motion is the motion vector from the previous sampling point to
	// this one (zero at the first point of a track).
	Motion geom.Vec
	// MotionValid reports whether Motion was actually observed: it is
	// false at a track's first sampling point, where the zero Motion
	// means "unknown", not "standing still". Models that key on low
	// speed (the stalled-vehicle model) must not treat that unobserved
	// zero as a real standstill.
	MotionValid bool
	// PrevMotion is the previous sampling point's motion vector (zero
	// for the first two points).
	PrevMotion geom.Vec
	// PrevValid reports whether PrevMotion was actually observed: it
	// is false for a track's first two sampling points, where no
	// previous motion exists. Speed-change measures must not treat
	// the unobserved zero as a real standstill — otherwise every
	// track's second sample carries a fake |v − 0| spike.
	PrevValid bool
	// MinDist is the distance to the nearest other tracked vehicle in
	// this frame; +Inf when the vehicle is alone.
	MinDist float64
	// Area is the vehicle's segmented blob area in pixels² at this
	// sampling point (0 when unknown — sketches, synthetic vectors,
	// records persisted before the field existed).
	Area float64
}

// Speed returns the vehicle speed at the sample, in pixels per frame,
// given the sampling rate that produced it.
func (s Sample) Speed(rate int) float64 {
	if rate <= 0 {
		return 0
	}
	return s.Motion.Norm() / float64(rate)
}

// VDiff returns the absolute speed change between the previous and
// current sampling points (pixels per frame). It is 0 when no
// previous motion was observed.
func (s Sample) VDiff(rate int) float64 {
	if rate <= 0 || !s.PrevValid {
		return 0
	}
	return math.Abs(s.Motion.Norm()-s.PrevMotion.Norm()) / float64(rate)
}

// Theta returns the unsigned angle between the current and previous
// motion vectors — the paper's Fig. 3 direction-change measure.
func (s Sample) Theta() float64 {
	return s.Motion.AngleBetween(s.PrevMotion)
}

// Model converts raw samples into feature vectors. Implementations
// must return vectors of constant dimension Dim(), with the convention
// that larger component values indicate more "eventful" behaviour
// (the initial-query heuristic scores vectors by their squared sum).
type Model interface {
	// Name identifies the model in reports and persisted datasets.
	Name() string
	// Dim is the feature dimensionality.
	Dim() int
	// Vector computes the features of one sample. rate is the
	// sampling rate in frames per point.
	Vector(s Sample, rate int) []float64
}

// AccidentModel is the paper's accident event model:
// α_i = [1/mdist_i, vdiff_i, θ_i]. Eps bounds the inverse distance
// when two centroids (nearly) coincide.
type AccidentModel struct {
	// Eps is the minimum distance used in the inverse; 0 means the
	// default of 1 pixel.
	Eps float64
}

// Name implements Model.
func (AccidentModel) Name() string { return "accident" }

// Dim implements Model.
func (AccidentModel) Dim() int { return 3 }

// Vector implements Model.
func (m AccidentModel) Vector(s Sample, rate int) []float64 {
	eps := m.Eps
	if eps <= 0 {
		eps = 1
	}
	inv := 0.0
	if !math.IsInf(s.MinDist, 1) {
		d := s.MinDist
		if d < eps {
			d = eps
		}
		inv = 1 / d
	}
	return []float64{inv, s.VDiff(rate), s.Theta()}
}

// SpeedingModel targets excessive speed: features are the speed ratio
// above a reference cruising speed and the absolute excess.
type SpeedingModel struct {
	// RefSpeed is the nominal cruising speed in pixels per frame.
	RefSpeed float64
}

// Name implements Model.
func (SpeedingModel) Name() string { return "speeding" }

// Dim implements Model.
func (SpeedingModel) Dim() int { return 2 }

// Vector implements Model.
func (m SpeedingModel) Vector(s Sample, rate int) []float64 {
	ref := m.RefSpeed
	if ref <= 0 {
		ref = 1
	}
	v := s.Speed(rate)
	excess := v - ref
	if excess < 0 {
		excess = 0
	}
	return []float64{v / ref, excess}
}

// UTurnModel targets reversal of direction: features are the
// per-sample direction change and the direction change weighted by
// speed (a fast turn is more salient than a crawl).
type UTurnModel struct{}

// Name implements Model.
func (UTurnModel) Name() string { return "u-turn" }

// Dim implements Model.
func (UTurnModel) Dim() int { return 2 }

// Vector implements Model.
func (m UTurnModel) Vector(s Sample, rate int) []float64 {
	th := s.Theta()
	return []float64{th, th * s.Speed(rate)}
}

// ModelByName returns the model registered under the given name, used
// when loading persisted datasets.
func ModelByName(name string) (Model, error) {
	switch name {
	case "accident":
		return AccidentModel{}, nil
	case "speeding":
		return SpeedingModel{RefSpeed: 2.5}, nil
	case "u-turn":
		return UTurnModel{}, nil
	case "sudden-stop":
		return SuddenStopModel{}, nil
	case "wrong-way":
		return WrongWayModel{}, nil
	case "tailgating":
		return TailgateModel{}, nil
	case "near-miss":
		return NearMissModel{}, nil
	case "stalled":
		return StalledModel{}, nil
	default:
		return nil, fmt.Errorf("event: unknown model %q", name)
	}
}

// ErrBadRate is returned when sampling with a non-positive rate.
var ErrBadRate = errors.New("event: sampling rate must be positive")

// SampleTracks samples every track on the global frame grid
// (frames 0, rate, 2·rate, …) and returns, per track, its sample
// series. Motion vectors are differences between consecutive grid
// positions of the same track; MinDist is measured against all other
// tracks present in the same frame (including coasted predictions,
// which are still the tracker's best estimate).
func SampleTracks(tracks []*track.Track, rate int) (map[int][]Sample, error) {
	if rate <= 0 {
		return nil, ErrBadRate
	}
	out := make(map[int][]Sample, len(tracks))
	for _, t := range tracks {
		var samples []Sample
		var prevPos geom.Point
		var prevMotion geom.Vec
		first := true
		// Align to the global grid: first grid frame ≥ track start.
		start := ((t.Start() + rate - 1) / rate) * rate
		for f := start; f <= t.End(); f += rate {
			obs, ok := t.At(f)
			if !ok {
				continue
			}
			s := Sample{Frame: f, Pos: obs.Centroid, MinDist: math.Inf(1), Area: float64(obs.Area)}
			if !first {
				s.Motion = obs.Centroid.Sub(prevPos)
				s.MotionValid = true
				s.PrevMotion = prevMotion
				// The previous motion is only observed from the third
				// sample on (the second sample's predecessor had none).
				s.PrevValid = len(samples) >= 2
			}
			for _, o := range tracks {
				if o == t {
					continue
				}
				if oo, ok := o.At(f); ok {
					if d := obs.Centroid.Dist(oo.Centroid); d < s.MinDist {
						s.MinDist = d
					}
				}
			}
			samples = append(samples, s)
			prevMotion = s.Motion
			prevPos = obs.Centroid
			first = false
		}
		if len(samples) > 0 {
			out[t.ID] = samples
		}
	}
	return out, nil
}
