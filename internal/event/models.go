package event

// Event models for the retbench incident taxonomy, extending the
// paper's accident/speeding/U-turn set along the lines of its §4
// claim that the event model "may also be adjusted to detect … any
// other event that involves the abnormal behavior of a vehicle". Each
// follows the package convention: constant dimension, larger
// components = more eventful, so the initial-query heuristic ranks
// them without supervision.

import "math"

// SuddenStopModel targets abrupt speed loss: features are the
// absolute speed change and the speed change normalized by the
// current speed (a stop that ends near zero scores higher than the
// same Δv at highway speed).
type SuddenStopModel struct{}

// Name implements Model.
func (SuddenStopModel) Name() string { return "sudden-stop" }

// Dim implements Model.
func (SuddenStopModel) Dim() int { return 2 }

// Vector implements Model.
func (SuddenStopModel) Vector(s Sample, rate int) []float64 {
	vd := s.VDiff(rate)
	return []float64{vd, vd / (1 + s.Speed(rate))}
}

// WrongWayModel targets travel against the nominal flow direction:
// features are the opposition of the motion vector to the flow
// (cosine-based, zero for stationary or flow-aligned vehicles) and
// the opposition weighted by speed — driving fast against traffic is
// more salient than inching.
type WrongWayModel struct {
	// Flow is the nominal flow direction of the monitored lane; zero
	// means the default eastbound (1, 0).
	Flow [2]float64
}

// Name implements Model.
func (WrongWayModel) Name() string { return "wrong-way" }

// Dim implements Model.
func (WrongWayModel) Dim() int { return 2 }

// Vector implements Model.
func (m WrongWayModel) Vector(s Sample, rate int) []float64 {
	fx, fy := m.Flow[0], m.Flow[1]
	if fx == 0 && fy == 0 {
		fx = 1
	}
	fn := math.Hypot(fx, fy)
	mn := s.Motion.Norm()
	opp := 0.0
	if mn > 0 {
		cos := (s.Motion.X*fx + s.Motion.Y*fy) / (mn * fn)
		if cos < 0 {
			opp = -cos
		}
	}
	return []float64{opp, opp * s.Speed(rate)}
}

// TailgateModel targets unsafe following distance: features are the
// inverse distance to the nearest vehicle and the same inverse
// weighted by speed — a close gap at speed is the dangerous case,
// a close gap in a queue at rest is not.
type TailgateModel struct {
	// Eps bounds the inverse when centroids (nearly) coincide; 0 means
	// the default of 1 pixel.
	Eps float64
}

// Name implements Model.
func (TailgateModel) Name() string { return "tailgating" }

// Dim implements Model.
func (TailgateModel) Dim() int { return 2 }

// Vector implements Model.
func (m TailgateModel) Vector(s Sample, rate int) []float64 {
	eps := m.Eps
	if eps <= 0 {
		eps = 1
	}
	if math.IsInf(s.MinDist, 1) {
		return []float64{0, 0}
	}
	d := s.MinDist
	if d < eps {
		d = eps
	}
	return []float64{1 / d, s.Speed(rate) / d}
}

// NearMissModel targets high-speed close passes: features are the
// speed-to-distance ratio (closing fast on a nearby vehicle) and the
// direction change weighted by speed (the evasive swerve). Either
// component alone is ambiguous — queued traffic is close but slow,
// lane changes swerve but far — so the model separates near misses by
// scoring both.
type NearMissModel struct {
	// Eps bounds the distance denominator; 0 means the default of 1.
	Eps float64
}

// Name implements Model.
func (NearMissModel) Name() string { return "near-miss" }

// Dim implements Model.
func (NearMissModel) Dim() int { return 2 }

// Vector implements Model.
func (m NearMissModel) Vector(s Sample, rate int) []float64 {
	eps := m.Eps
	if eps <= 0 {
		eps = 1
	}
	prox := 0.0
	if !math.IsInf(s.MinDist, 1) {
		d := s.MinDist
		if d < eps {
			d = eps
		}
		prox = s.Speed(rate) / d
	}
	return []float64{prox, s.Theta() * s.Speed(rate)}
}

// StalledModel targets vehicles at rest in a live lane: features are
// the inverse speed (saturating at 1/Eps for a full stop) and the
// shortfall below a reference cruising speed. Both are zero when the
// motion vector is unobserved — a track's first sample is not a
// standstill.
type StalledModel struct {
	// Eps bounds the inverse speed; 0 means the default of 0.1 px/frame.
	Eps float64
	// RefSpeed is the nominal cruising speed; 0 means the default 2.5.
	RefSpeed float64
}

// Name implements Model.
func (StalledModel) Name() string { return "stalled" }

// Dim implements Model.
func (StalledModel) Dim() int { return 2 }

// Vector implements Model.
func (m StalledModel) Vector(s Sample, rate int) []float64 {
	if !s.MotionValid {
		return []float64{0, 0}
	}
	eps := m.Eps
	if eps <= 0 {
		eps = 0.1
	}
	ref := m.RefSpeed
	if ref <= 0 {
		ref = 2.5
	}
	v := s.Speed(rate)
	short := 1 - v/ref
	if short < 0 {
		short = 0
	}
	return []float64{eps / (v + eps), short}
}
