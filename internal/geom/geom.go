// Package geom provides the small planar-geometry vocabulary used by
// the tracking, simulation and event-modeling layers: points, vectors,
// axis-aligned rectangles and angle arithmetic.
//
// The video coordinate convention follows raster images: x grows to
// the right, y grows downward, and the origin is the top-left corner
// of the frame. All quantities are float64; pixel rounding happens
// only at the rendering boundary.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the image plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q.
// It avoids the square root when only comparisons are needed.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Vec is a displacement in the image plane. A motion vector in the
// sense of the paper (Fig. 3) is the Vec from a vehicle's centroid at
// the previous sampling point to its centroid at the current one.
type Vec struct {
	X, Y float64
}

// V is shorthand for Vec{x, y}.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product, i.e. the
// signed area of the parallelogram spanned by v and w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged since it has no direction.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the orientation of v in radians in (-π, π], measured
// from the +x axis.
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleBetween returns the unsigned angle in [0, π] between v and w.
// This is the θ of the paper's Fig. 3: the absolute difference angle
// between two consecutive motion vectors. If either vector is zero the
// angle is defined as 0 (a stationary vehicle has not turned).
func (v Vec) AngleBetween(w Vec) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	// atan2 of (cross, dot) is numerically stabler than acos of the
	// normalized dot product near 0 and π.
	a := math.Atan2(math.Abs(v.Cross(w)), v.Dot(w))
	return a
}

// Rotate returns v rotated counterclockwise (in image coordinates,
// this appears clockwise on screen because y points down) by rad.
func (v Vec) Rotate(rad float64) Vec {
	s, c := math.Sincos(rad)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Rect is an axis-aligned rectangle, the Minimal Bounding Rectangle
// (MBR) of a vehicle segment in the paper's terminology. Min is the
// top-left corner and Max the bottom-right; a Rect is well formed when
// Min.X <= Max.X and Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// RectFromCenter builds the rectangle of the given width and height
// centered on c.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{
		Min: Point{c.X - w/2, c.Y - h/2},
		Max: Point{c.X + w/2, c.Y + h/2},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r; malformed rectangles report 0.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersect returns the overlap of r and s; the result has zero Area
// when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{Min: out.Min, Max: out.Min} // empty at the corner
	}
	return out
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Overlaps reports whether r and s share any area. Rectangles that
// merely touch at an edge do not overlap.
func (r Rect) Overlaps(s Rect) bool { return r.Intersect(s).Area() > 0 }

// IoU returns the intersection-over-union similarity of r and s in
// [0, 1]. It is the standard bounding-box agreement measure used by
// the tracker's evaluation.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Expand grows r by m on every side (shrinks for negative m).
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// NormalizeAngle wraps rad into (-π, π].
func NormalizeAngle(rad float64) float64 {
	rad = math.Mod(rad, 2*math.Pi)
	switch {
	case rad > math.Pi:
		rad -= 2 * math.Pi
	case rad <= -math.Pi:
		rad += 2 * math.Pi
	}
	return rad
}

// AngleDiff returns the unsigned smallest difference between two
// orientations, in [0, π].
func AngleDiff(a, b float64) float64 {
	return math.Abs(NormalizeAngle(a - b))
}
