package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := p.Add(V(3, -1))
	if q != Pt(4, 1) {
		t.Fatalf("Add: got %v", q)
	}
	if v := q.Sub(p); v != V(3, -1) {
		t.Fatalf("Sub: got %v", v)
	}
	if d := Pt(0, 0).Dist(Pt(3, 4)); !approx(d, 5) {
		t.Fatalf("Dist: got %v", d)
	}
	if d := Pt(0, 0).DistSq(Pt(3, 4)); !approx(d, 25) {
		t.Fatalf("DistSq: got %v", d)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, -20)
	if m := p.Lerp(q, 0.5); m != Pt(5, -10) {
		t.Fatalf("midpoint: got %v", m)
	}
	if s := p.Lerp(q, 0); s != p {
		t.Fatalf("t=0: got %v", s)
	}
	if e := p.Lerp(q, 1); e != q {
		t.Fatalf("t=1: got %v", e)
	}
}

func TestVecBasics(t *testing.T) {
	v := V(3, 4)
	if n := v.Norm(); !approx(n, 5) {
		t.Fatalf("Norm: got %v", n)
	}
	if n := v.NormSq(); !approx(n, 25) {
		t.Fatalf("NormSq: got %v", n)
	}
	u := v.Unit()
	if !approx(u.Norm(), 1) {
		t.Fatalf("Unit norm: got %v", u.Norm())
	}
	if z := V(0, 0).Unit(); z != V(0, 0) {
		t.Fatalf("zero Unit: got %v", z)
	}
	if d := V(1, 2).Dot(V(3, 4)); !approx(d, 11) {
		t.Fatalf("Dot: got %v", d)
	}
	if c := V(1, 0).Cross(V(0, 1)); !approx(c, 1) {
		t.Fatalf("Cross: got %v", c)
	}
}

func TestAngleBetween(t *testing.T) {
	cases := []struct {
		v, w Vec
		want float64
	}{
		{V(1, 0), V(1, 0), 0},
		{V(1, 0), V(0, 1), math.Pi / 2},
		{V(1, 0), V(-1, 0), math.Pi},
		{V(1, 0), V(1, 1), math.Pi / 4},
		{V(0, 0), V(1, 1), 0},         // zero vector: defined as no turn
		{V(2, 2), V(-3, -3), math.Pi}, // reversal regardless of magnitude
	}
	for i, c := range cases {
		if got := c.v.AngleBetween(c.w); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: AngleBetween(%v, %v) = %v, want %v", i, c.v, c.w, got, c.want)
		}
	}
}

func TestAngleBetweenSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		v := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		w := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		x, y := v.AngleBetween(w), w.AngleBetween(v)
		if math.Abs(x-y) > 1e-9 || x < 0 || x > math.Pi+1e-12 {
			t.Fatalf("AngleBetween(%v,%v)=%v, reversed=%v", v, w, x, y)
		}
	}
}

func TestRotate(t *testing.T) {
	v := V(1, 0).Rotate(math.Pi / 2)
	if math.Abs(v.X) > eps || math.Abs(v.Y-1) > eps {
		t.Fatalf("Rotate 90°: got %v", v)
	}
	// Rotation preserves length.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		rad := rng.NormFloat64() * 10
		if math.Abs(w.Rotate(rad).Norm()-w.Norm()) > 1e-6*(1+w.Norm()) {
			t.Fatalf("rotation changed length: %v by %v", w, rad)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 2)}
	if !approx(r.Width(), 4) || !approx(r.Height(), 2) || !approx(r.Area(), 8) {
		t.Fatalf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != Pt(2, 1) {
		t.Fatalf("Center: got %v", c)
	}
	if !r.Contains(Pt(4, 2)) || r.Contains(Pt(4.1, 2)) {
		t.Fatal("Contains edge semantics wrong")
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Pt(5, 5), 4, 2)
	if r.Min != Pt(3, 4) || r.Max != Pt(7, 6) {
		t.Fatalf("got %v", r)
	}
	if r.Center() != Pt(5, 5) {
		t.Fatalf("center drifted: %v", r.Center())
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	b := Rect{Min: Pt(2, 2), Max: Pt(6, 6)}
	i := a.Intersect(b)
	if i.Min != Pt(2, 2) || i.Max != Pt(4, 4) {
		t.Fatalf("Intersect: got %v", i)
	}
	u := a.Union(b)
	if u.Min != Pt(0, 0) || u.Max != Pt(6, 6) {
		t.Fatalf("Union: got %v", u)
	}
	// Disjoint rectangles intersect with zero area.
	c := Rect{Min: Pt(10, 10), Max: Pt(12, 12)}
	if a.Intersect(c).Area() != 0 {
		t.Fatal("disjoint intersection should have zero area")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects must not overlap")
	}
	// Touching at an edge is not overlapping.
	d := Rect{Min: Pt(4, 0), Max: Pt(8, 4)}
	if a.Overlaps(d) {
		t.Fatal("edge-touching rects must not overlap")
	}
}

func TestIoU(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	if got := a.IoU(a); !approx(got, 1) {
		t.Fatalf("self IoU: got %v", got)
	}
	b := Rect{Min: Pt(1, 0), Max: Pt(3, 2)}
	// inter = 2, union = 4+4-2 = 6
	if got := a.IoU(b); math.Abs(got-1.0/3.0) > eps {
		t.Fatalf("IoU: got %v", got)
	}
	c := Rect{Min: Pt(5, 5), Max: Pt(6, 6)}
	if got := a.IoU(c); got != 0 {
		t.Fatalf("disjoint IoU: got %v", got)
	}
}

func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randRect := func() Rect {
		x, y := rng.Float64()*10, rng.Float64()*10
		return Rect{Min: Pt(x, y), Max: Pt(x+rng.Float64()*5, y+rng.Float64()*5)}
	}
	for i := 0; i < 500; i++ {
		a, b := randRect(), randRect()
		x, y := a.IoU(b), b.IoU(a)
		if math.Abs(x-y) > eps {
			t.Fatalf("IoU not symmetric: %v vs %v", x, y)
		}
		if x < 0 || x > 1+eps {
			t.Fatalf("IoU out of range: %v", x)
		}
	}
}

func TestExpand(t *testing.T) {
	r := Rect{Min: Pt(2, 2), Max: Pt(4, 4)}
	e := r.Expand(1)
	if e.Min != Pt(1, 1) || e.Max != Pt(5, 5) {
		t.Fatalf("Expand: got %v", e)
	}
	s := r.Expand(-0.5)
	if s.Min != Pt(2.5, 2.5) || s.Max != Pt(3.5, 3.5) {
		t.Fatalf("shrink: got %v", s)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for i, c := range cases {
		if got := NormalizeAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: NormalizeAngle(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		n := NormalizeAngle(a)
		return n > -math.Pi-1e-9 && n <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, -0.1); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("got %v", d)
	}
	// Wrap-around: 350° vs 10° differ by 20°, not 340°.
	a, b := 350*math.Pi/180, 10*math.Pi/180
	if d := AngleDiff(a, b); math.Abs(d-20*math.Pi/180) > 1e-9 {
		t.Fatalf("wraparound: got %v", d)
	}
}

func TestStringers(t *testing.T) {
	if s := Pt(1, 2).String(); s == "" {
		t.Fatal("empty Point string")
	}
	if s := (Rect{Min: Pt(0, 0), Max: Pt(1, 1)}).String(); s == "" {
		t.Fatal("empty Rect string")
	}
}
