//go:build !race

package core

// raceDetectorOn mirrors race_on_test.go; see there.
const raceDetectorOn = false
