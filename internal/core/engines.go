// Engine registry: the one place a ranking engine is resolved from a
// name, shared by cmd/milquery, the HTTP query service and the load
// generator so every front end drives the identical code path.
package core

import (
	"errors"
	"fmt"
	"sort"

	"milvideo/internal/dd"
	"milvideo/internal/mil"
	"milvideo/internal/misvm"
	"milvideo/internal/retrieval"
	"milvideo/internal/rf"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// ErrUnknownEngine is returned for engine names outside the registry.
var ErrUnknownEngine = errors.New("core: unknown engine")

// DefaultEngine is the engine used when a request names none: the
// paper's proposed MIL + One-class SVM framework.
const DefaultEngine = "mil"

// engineBuilders maps names to constructors. cache is non-nil when the
// caller wants cross-round kernel reuse; engines that cannot use it
// ignore it.
var engineBuilders = map[string]func(cache *retrieval.MILCache) retrieval.Engine{
	"mil": func(cache *retrieval.MILCache) retrieval.Engine {
		return retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: cache}
	},
	"weighted": func(*retrieval.MILCache) retrieval.Engine {
		return retrieval.WeightedEngine{Norm: rf.NormPercentage}
	},
	"rocchio": func(*retrieval.MILCache) retrieval.Engine {
		return retrieval.RocchioEngine{}
	},
	"emdd": func(*retrieval.MILCache) retrieval.Engine {
		return dd.Engine{}
	},
	"misvm": func(*retrieval.MILCache) retrieval.Engine {
		return misvm.Engine{Opt: misvm.Options{C: 2}}
	},
}

// EngineNames lists the registry in sorted order (for usage strings
// and API error messages).
func EngineNames() []string {
	out := make([]string, 0, len(engineBuilders))
	for n := range engineBuilders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EngineByName resolves a ranking engine. The empty name selects
// DefaultEngine. cache, when non-nil, wires per-session kernel reuse
// into engines that support it (currently "mil"); results are
// identical with or without it.
func EngineByName(name string, cache *retrieval.MILCache) (retrieval.Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	build, ok := engineBuilders[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownEngine, name, EngineNames())
	}
	return build(cache), nil
}

// OracleFromRecord builds the simulated user for a stored clip from
// its incident ground truth: a VS is relevant iff an incident whose
// type satisfies pred overlaps it by at least one sampling interval
// (nil pred selects accidents). It is the judgment source for offline
// sessions, the milquery tool and the load generator alike.
func OracleFromRecord(rec *videodb.ClipRecord, pred func(sim.IncidentType) bool) (retrieval.Oracle, error) {
	if rec == nil {
		return nil, errors.New("core: nil record")
	}
	if len(rec.Incidents) == 0 {
		return nil, fmt.Errorf("core: clip %q has no incident ground truth", rec.Name)
	}
	if pred == nil {
		pred = func(t sim.IncidentType) bool { return t.IsAccident() }
	}
	incidents := rec.Incidents
	need := rec.Window.SampleRate
	if need < 1 {
		need = 1
	}
	return retrieval.FuncOracle(func(vs window.VS) bool {
		return IncidentOverlap(incidents, pred, vs.StartFrame, vs.EndFrame, need)
	}), nil
}

// IncidentOverlap reports whether any incident accepted by pred
// overlaps the frame interval [start, end] by at least need frames —
// the shared relevance test behind every ground-truth oracle (the
// load generator applies it to frame spans received over the wire,
// where no window.VS value exists).
func IncidentOverlap(incidents []sim.Incident, pred func(sim.IncidentType) bool, start, end, need int) bool {
	if need < 1 {
		need = 1
	}
	for _, inc := range incidents {
		if pred != nil && !pred(inc.Type) {
			continue
		}
		lo, hi := inc.Start, inc.End
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		if hi-lo+1 >= need {
			return true
		}
	}
	return false
}
