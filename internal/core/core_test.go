package core

import (
	"bytes"
	"sync"
	"testing"

	"milvideo/internal/event"
	"milvideo/internal/frame"
	"milvideo/internal/mil"
	"milvideo/internal/retrieval"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// smallScene builds a quick tunnel scene for integration tests.
func smallScene(t *testing.T) *sim.Scene {
	t.Helper()
	s, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 400, Seed: 11, SpawnEvery: 90, WallCrash: 2, SuddenStop: 1, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var (
	processedOnce sync.Once
	processedClip *Clip
	processedErr  error
)

// processed returns a shared, read-only processed clip; building it
// (render + track over 400 frames) is the expensive part of this
// package's tests.
func processed(t *testing.T) *Clip {
	t.Helper()
	processedOnce.Do(func() {
		processedClip, processedErr = ProcessScene(smallScene(t), DefaultConfig())
	})
	if processedErr != nil {
		t.Fatal(processedErr)
	}
	return processedClip
}

func TestProcessSceneEndToEnd(t *testing.T) {
	c := processed(t)
	if c.Scene == nil || c.Video == nil {
		t.Fatal("missing stages")
	}
	if len(c.Tracks) == 0 {
		t.Fatal("no tracks")
	}
	if len(c.VSs) == 0 {
		t.Fatal("no video sequences")
	}
	if window.CountTS(c.VSs) == 0 {
		t.Fatal("no trajectory sequences")
	}
	q, err := c.TrackingQuality(12)
	if err != nil {
		t.Fatal(err)
	}
	if q.Purity < 0.8 {
		t.Fatalf("tracking purity %v too low: %v", q.Purity, q)
	}
}

func TestProcessErrors(t *testing.T) {
	if _, err := ProcessScene(nil, DefaultConfig()); err == nil {
		t.Fatal("nil scene accepted")
	}
	if _, err := ProcessVideo(nil, DefaultConfig()); err == nil {
		t.Fatal("nil video accepted")
	}
	bad := &frame.Video{FPS: 25}
	if _, err := ProcessVideo(bad, DefaultConfig()); err == nil {
		t.Fatal("empty video accepted")
	}
}

func TestProcessVideoWithoutGroundTruth(t *testing.T) {
	c := processed(t)
	// Re-ingest the rendered pixels with no scene attached.
	c2, err := ProcessVideo(c.Video, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Scene != nil {
		t.Fatal("scene should be nil")
	}
	if _, err := c2.AccidentOracle(); err == nil {
		t.Fatal("oracle without ground truth accepted")
	}
	if _, err := c2.TrackingQuality(10); err == nil {
		t.Fatal("quality without ground truth accepted")
	}
	// Default model fills in when nil.
	cfg := DefaultConfig()
	cfg.Model = nil
	c3, err := ProcessVideo(c.Video, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Config.Model == nil {
		t.Fatal("model not defaulted")
	}
}

func TestRetrievalSessionOnProcessedClip(t *testing.T) {
	c := processed(t)
	oracle, err := c.AccidentOracle()
	if err != nil {
		t.Fatal(err)
	}
	sess := c.Session(oracle, 10)
	if n := sess.GroundTruthRelevant(); n == 0 {
		t.Fatal("no relevant VSs in ground truth; scene too easy")
	}
	res, err := sess.Run(retrieval.MILEngine{Opt: mil.DefaultOptions()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds: %d", len(res.Rounds))
	}
	// The initial heuristic must find at least one accident: crash
	// signatures dominate the squared-sum score.
	if res.Rounds[0].Accuracy == 0 {
		t.Fatal("initial round found nothing")
	}
}

func TestRecordRoundtripThroughVideoDB(t *testing.T) {
	c := processed(t)
	rec, err := c.Record("tunnel-test")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta["source"] != "simulated:tunnel" {
		t.Fatalf("meta: %v", rec.Meta)
	}
	db := videodb.New()
	if err := db.Add(rec); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := videodb.New()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rec2, err := db2.Clip("tunnel-test")
	if err != nil {
		t.Fatal(err)
	}
	// A session rebuilt from the persisted record reproduces the live
	// session's results exactly.
	live := c.Session(mustOracle(t, c), 10)
	stored, err := SessionFromRecord(rec2, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := live.Run(retrieval.MILEngine{Opt: mil.DefaultOptions()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := stored.Run(retrieval.MILEngine{Opt: mil.DefaultOptions()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lr.Rounds {
		if lr.Rounds[i].Accuracy != sr.Rounds[i].Accuracy {
			t.Fatalf("round %d: %v vs %v", i, lr.Rounds[i].Accuracy, sr.Rounds[i].Accuracy)
		}
	}
	// Record validation errors.
	if _, err := c.Record(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := SessionFromRecord(nil, nil, 10); err == nil {
		t.Fatal("nil record accepted")
	}
	rec2.Incidents = nil
	if _, err := SessionFromRecord(rec2, nil, 10); err == nil {
		t.Fatal("record without ground truth accepted")
	}
}

func mustOracle(t *testing.T, c *Clip) retrieval.Oracle {
	t.Helper()
	o, err := c.AccidentOracle()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOracleForCustomPredicate(t *testing.T) {
	c := processed(t)
	o, err := c.OracleFor(func(tp sim.IncidentType) bool { return tp == sim.Speeding })
	if err != nil {
		t.Fatal(err)
	}
	// No speeding incidents were configured: nothing is relevant.
	for _, vs := range c.VSs {
		if o.Relevant(vs) {
			t.Fatal("phantom speeding incident")
		}
	}
}

func TestVehicleClassification(t *testing.T) {
	c := processed(t)
	clf, err := c.TrainVehicleClassifier(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ClassifyTracks(clf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no classifications")
	}
	valid := map[string]bool{"car": true, "suv": true, "truck": true}
	for id, cls := range got {
		if !valid[cls] {
			t.Fatalf("track %d: unknown class %q", id, cls)
		}
	}
	if _, err := c.ClassifyTracks(nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
	// Training without ground truth fails.
	c2, err := ProcessVideo(c.Video, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.TrainVehicleClassifier(12, 2); err == nil {
		t.Fatal("training without ground truth accepted")
	}
}

func TestTrackShapeFeatures(t *testing.T) {
	c := processed(t)
	found := false
	for _, tr := range c.Tracks {
		feats, ok := TrackShapeFeatures(tr)
		if !ok {
			continue
		}
		found = true
		if len(feats) != 4 {
			t.Fatalf("feature dim: %d", len(feats))
		}
		if feats[0] <= 0 || feats[1] <= 0 || feats[2] <= 0 || feats[3] <= 0 {
			t.Fatalf("non-positive features: %v", feats)
		}
	}
	if !found {
		t.Fatal("no track produced shape features")
	}
}

func TestGeneralityModelSwap(t *testing.T) {
	// The pipeline accepts any event model (paper §4's generality
	// claim): re-run with the U-turn model and check dimensions.
	cfg := DefaultConfig()
	cfg.Model = event.UTurnModel{}
	c, err := ProcessScene(smallScene(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range c.VSs {
		for _, ts := range vs.TSs {
			if len(ts.Flat()) != 3*2 {
				t.Fatalf("u-turn TS dim: %d", len(ts.Flat()))
			}
		}
	}
}
