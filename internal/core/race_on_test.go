//go:build race

package core

// raceDetectorOn trims the streaming identity sweeps under the race
// detector (10–20× slower per pipeline run): the race run keeps one
// scene and the interesting concurrency shapes, while the regular run
// stays exhaustive.
const raceDetectorOn = true
