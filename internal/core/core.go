// Package core wires the full system together — the paper's Fig. 6
// flow: raw video → vehicle segmentation and tracking → trajectory
// modeling → event features → sliding-window VS/TS extraction →
// interactive MIL retrieval. It is the primary entry point for the
// tools, examples and benchmarks.
//
// Two ingestion paths exist: ProcessScene renders a simulated scene
// and runs the complete vision pipeline over the pixels (the default
// for experiments, where ground truth drives the feedback oracle),
// and ProcessVideo consumes an arbitrary clip with no ground truth
// (the path a real deployment would use, with a human supplying
// feedback).
package core

import (
	"errors"
	"fmt"
	"time"

	"milvideo/internal/event"
	"milvideo/internal/faults"
	"milvideo/internal/frame"
	"milvideo/internal/render"
	"milvideo/internal/retrieval"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
	"milvideo/internal/track"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// Config bundles the pipeline parameters of every stage.
type Config struct {
	Render  render.Options
	Segment segment.Options
	Track   track.Options
	Window  window.Config
	// Stream tunes the streaming ingestion pipeline (channel depth,
	// batch size, segmentation workers); zero values take defaults.
	// Stream settings never change the output, only the schedule.
	Stream StreamConfig
	// Faults, when non-nil and enabled, injects deterministic ingest
	// faults (frame drops, pixel corruption, latency spikes, transient
	// stage errors) into the streaming pipeline; the clip then reports
	// what it absorbed in Clip.Degraded instead of failing. nil — the
	// default — and a zero-rate injector are both provably inert: the
	// output is byte-identical to the fault-free pipeline. The
	// sequential reference path never injects faults.
	Faults *faults.Injector
	// StageRetries bounds the retry attempts after a transient stage
	// failure (0 means 2); RetryBackoff is the base delay between
	// retries, doubling per attempt (0 means 1ms).
	StageRetries int
	RetryBackoff time.Duration
	// Model is the event model; nil means the paper's accident model.
	Model event.Model
}

// DefaultConfig returns the parameters used by the paper-scale
// experiments.
func DefaultConfig() Config {
	return Config{
		Render:  render.DefaultOptions(),
		Segment: segment.DefaultOptions(),
		Track:   track.DefaultOptions(),
		Window:  window.DefaultConfig(),
		Model:   event.AccidentModel{},
	}
}

// Clip is a fully processed clip: the intermediate products of every
// pipeline stage plus the final VS database.
type Clip struct {
	// Scene is the simulator ground truth; nil when the clip came
	// from ProcessVideo.
	Scene *sim.Scene
	// Video is the rendered (or supplied) pixel data.
	Video *frame.Video
	// Tracks are the confirmed vehicle tracks.
	Tracks []*track.Track
	// VSs is the extracted video-sequence database.
	VSs []window.VS
	// Degraded reports the faults the streaming pipeline absorbed
	// while producing this clip (all-zero without an enabled
	// Config.Faults injector).
	Degraded Degradation
	// Config echoes the parameters that produced the clip.
	Config Config
}

// ProcessScene renders the scene and runs the vision pipeline on the
// rendered pixels. The scene itself is only retained as ground truth
// for the feedback oracle and tracking evaluation — the learning
// stages never see it. Since PR 2 this is the streaming pipeline
// (ProcessSceneStream); the output is byte-identical to the
// sequential path.
func ProcessScene(scene *sim.Scene, cfg Config) (*Clip, error) {
	return ProcessSceneStream(scene, cfg)
}

// ProcessVideo runs segmentation, tracking, trajectory sampling and
// window extraction over an arbitrary clip. Since PR 2 this is the
// streaming pipeline (ProcessVideoStream); the output is
// byte-identical to ProcessVideoSequential.
func ProcessVideo(v *frame.Video, cfg Config) (*Clip, error) {
	return ProcessVideoStream(v, cfg)
}

// ProcessVideoSequential is the original stage-by-stage pipeline:
// segmentation over the whole clip (track.Video's worker pool), then
// tracking, then windowing, with no inter-stage overlap. It is kept as
// the reference implementation the streaming path is verified against,
// and as the baseline for the ingest benchmarks.
func ProcessVideoSequential(v *frame.Video, cfg Config) (*Clip, error) {
	if v == nil {
		return nil, errors.New("core: nil video")
	}
	if cfg.Model == nil {
		cfg.Model = event.AccidentModel{}
	}
	ex, err := segment.NewExtractor(v, cfg.Segment)
	if err != nil {
		return nil, fmt.Errorf("core: segmentation: %w", err)
	}
	tracks, err := track.Video(ex, v, cfg.Track)
	if err != nil {
		return nil, fmt.Errorf("core: tracking: %w", err)
	}
	vss, err := window.Extract(tracks, cfg.Model, v.Len(), cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("core: windowing: %w", err)
	}
	return &Clip{Video: v, Tracks: tracks, VSs: vss, Config: cfg}, nil
}

// AccidentOracle returns the simulated user for accident queries. It
// requires the clip to carry simulator ground truth.
func (c *Clip) AccidentOracle() (retrieval.Oracle, error) {
	return c.OracleFor(func(t sim.IncidentType) bool { return t.IsAccident() })
}

// OracleFor returns a simulated user answering for the incident types
// accepted by pred.
func (c *Clip) OracleFor(pred func(sim.IncidentType) bool) (retrieval.Oracle, error) {
	if c.Scene == nil {
		return nil, errors.New("core: clip has no ground truth; supply a real oracle")
	}
	// The simulated user only recognizes an event they can actually
	// watch: at least one sampling interval of it must fall inside
	// the window.
	return retrieval.SceneOracle{Scene: c.Scene, Pred: pred, MinOverlap: c.Config.Window.SampleRate}, nil
}

// Session builds a retrieval session over the clip's VS database.
func (c *Clip) Session(oracle retrieval.Oracle, topK int) *retrieval.Session {
	return &retrieval.Session{DB: c.VSs, Oracle: oracle, TopK: topK}
}

// Record converts the clip into a persistable database record.
func (c *Clip) Record(name string) (*videodb.ClipRecord, error) {
	if name == "" {
		return nil, errors.New("core: record needs a name")
	}
	rec := &videodb.ClipRecord{
		Name:      name,
		Frames:    c.Video.Len(),
		FPS:       c.Video.FPS,
		ModelName: c.Config.Model.Name(),
		Window:    c.Config.Window,
		VSs:       c.VSs,
		Meta:      map[string]string{},
	}
	if len(c.Video.Frames) > 0 {
		rec.Width, rec.Height = c.Video.Frames[0].W, c.Video.Frames[0].H
	}
	if c.Scene != nil {
		rec.Incidents = c.Scene.Incidents
		rec.Meta["source"] = "simulated:" + c.Scene.Name
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return rec, nil
}

// SessionFromRecord reconstructs a retrieval session from a persisted
// clip record, using its stored incident log as the oracle. pred nil
// selects accidents.
func SessionFromRecord(rec *videodb.ClipRecord, pred func(sim.IncidentType) bool, topK int) (*retrieval.Session, error) {
	oracle, err := OracleFromRecord(rec, pred)
	if err != nil {
		return nil, err
	}
	return &retrieval.Session{DB: rec.VSs, Oracle: oracle, TopK: topK}, nil
}

// TrackingQuality evaluates the clip's tracks against its ground
// truth (match radius in pixels).
func (c *Clip) TrackingQuality(matchRadius float64) (track.Quality, error) {
	if c.Scene == nil {
		return track.Quality{}, errors.New("core: clip has no ground truth")
	}
	return track.Evaluate(c.Tracks, c.Scene, matchRadius), nil
}
