package core

import (
	"bytes"
	"testing"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/render"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

// chaosScene is a short clip for fault-injection tests: long enough
// to confirm tracks and extract windows, short enough to process in
// well under a second.
func chaosScene(t *testing.T) *sim.Scene {
	t.Helper()
	s, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 120, Seed: 7, SpawnEvery: 50, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chaosConfig returns a pipeline config with a tiny retry backoff so
// exhausted-retry tests stay fast.
func chaosConfig(inj *faults.Injector) Config {
	cfg := DefaultConfig()
	cfg.Faults = inj
	cfg.RetryBackoff = 10 * time.Microsecond
	return cfg
}

// TestZeroRateInjectorIdentity is the inertness guarantee: a
// zero-rate injector produces output byte-identical to no injector at
// all, on both the static-background and adaptive streaming paths.
func TestZeroRateInjectorIdentity(t *testing.T) {
	scene := chaosScene(t)
	for _, adaptive := range []bool{false, true} {
		clean := DefaultConfig()
		clean.Segment.Adaptive = adaptive
		zero := chaosConfig(faults.New(faults.Config{Seed: 999}))
		zero.Segment.Adaptive = adaptive

		ref, err := ProcessSceneStream(scene, clean)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProcessSceneStream(scene, zero)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degraded.Any() {
			t.Fatalf("adaptive=%v: zero-rate injector reported degradation %v", adaptive, got.Degraded)
		}
		if !bytes.Equal(clipSignature(t, ref.Tracks, ref.VSs), clipSignature(t, got.Tracks, got.VSs)) {
			t.Fatalf("adaptive=%v: zero-rate injector changed the output", adaptive)
		}
	}
}

// TestFaultedIngestDegradesGracefully: under drops, corruption,
// latency spikes and transient errors the pipeline still succeeds,
// reports what it absorbed, and produces a structurally legal clip.
func TestFaultedIngestDegradesGracefully(t *testing.T) {
	scene := chaosScene(t)
	inj := faults.New(faults.Config{
		Seed:          3,
		FrameDrop:     0.08,
		SaltPepper:    0.1,
		Blackout:      0.03,
		SegTransient:  0.15,
		StageDelay:    0.05,
		StageDelayDur: 50 * time.Microsecond,
	})
	clip, err := ProcessSceneStream(scene, chaosConfig(inj))
	if err != nil {
		t.Fatalf("faulted ingest failed outright: %v", err)
	}
	d := clip.Degraded
	if !d.Any() {
		t.Fatal("no degradation reported under non-zero rates")
	}
	if d.FramesDropped == 0 || d.FramesCorrupted == 0 {
		t.Fatalf("expected drops and corruption in %v", d)
	}
	if d.TransientErrors == 0 || d.Retries == 0 {
		t.Fatalf("expected transient errors and retries in %v", d)
	}
	if d.RetriesExhausted > d.FramesDropped {
		t.Fatalf("exhausted retries %d exceed dropped frames %d", d.RetriesExhausted, d.FramesDropped)
	}
	if len(clip.VSs) == 0 {
		t.Fatal("no VSs extracted from degraded clip")
	}
	// Degraded output must still be recordable — this is what keeps a
	// batch alive.
	if _, err := clip.Record("degraded"); err != nil {
		t.Fatalf("degraded clip not recordable: %v", err)
	}
}

// TestFaultedIngestDeterministic: the same seed replays the identical
// fault schedule — output signature and degradation report both match
// across runs and across stream-config schedules.
func TestFaultedIngestDeterministic(t *testing.T) {
	scene := chaosScene(t)
	v, err := render.Video(scene, DefaultConfig().Render)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(stream StreamConfig) (*Clip, error) {
		cfg := chaosConfig(faults.New(faults.Config{
			Seed: 17, FrameDrop: 0.1, SaltPepper: 0.1, SegTransient: 0.2,
		}))
		cfg.Stream = stream
		return ProcessVideoStream(v, cfg)
	}
	a, err := mk(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []StreamConfig{{}, {Depth: 1, Batch: 1, SegWorkers: 1}, {Depth: 4, Batch: 4, SegWorkers: 3}} {
		b, err := mk(sc)
		if err != nil {
			t.Fatal(err)
		}
		if a.Degraded != b.Degraded {
			t.Fatalf("stream %+v: degradation differs: %v vs %v", sc, a.Degraded, b.Degraded)
		}
		if !bytes.Equal(clipSignature(t, a.Tracks, a.VSs), clipSignature(t, b.Tracks, b.VSs)) {
			t.Fatalf("stream %+v: faulted output not schedule-independent", sc)
		}
	}
}

// TestRetriesExhaustedDegradeToDrops: a permanent transient outage
// (rate 1) consumes the whole retry budget on every frame and
// degrades every frame to an empty detection set instead of failing.
func TestRetriesExhaustedDegradeToDrops(t *testing.T) {
	scene := chaosScene(t)
	cfg := chaosConfig(faults.New(faults.Config{Seed: 5, SegTransient: 1}))
	cfg.StageRetries = 1
	clip, err := ProcessSceneStream(scene, cfg)
	if err != nil {
		t.Fatalf("total outage should degrade, not fail: %v", err)
	}
	n := len(scene.Frames)
	d := clip.Degraded
	if d.RetriesExhausted != n || d.FramesDropped != n {
		t.Fatalf("want all %d frames exhausted+dropped, got %v", n, d)
	}
	if d.Retries != n*cfg.StageRetries {
		t.Fatalf("want %d retries, got %d", n*cfg.StageRetries, d.Retries)
	}
	if len(clip.Tracks) != 0 {
		t.Fatalf("tracks materialized from zero detections: %d", len(clip.Tracks))
	}
}

// TestFaultedIngestScenesReportsPerClip: a faulted batch ingest keeps
// every job alive, stores every record, and reports degradation per
// clip.
func TestFaultedIngestScenesReportsPerClip(t *testing.T) {
	s1 := chaosScene(t)
	s2, err := sim.Intersection(sim.IntersectionConfig{
		Frames: 100, Seed: 4, SpawnEvery: 40, Collisions: 1, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(faults.New(faults.Config{
		Seed: 29, FrameDrop: 0.1, SaltPepper: 0.05, SegTransient: 0.1,
	}))
	db := videodb.New()
	results := IngestScenes(db, []IngestJob{
		{Name: "chaos-tunnel", Scene: s1},
		{Name: "chaos-xing", Scene: s2},
	}, IngestOptions{Config: cfg})
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("job %q failed under faults: %v", res.Name, res.Err)
		}
		if !res.Degraded.Any() {
			t.Fatalf("job %q reported no degradation", res.Name)
		}
		if res.Record == nil {
			t.Fatalf("job %q produced no record", res.Name)
		}
	}
	if db.Len() != 2 {
		t.Fatalf("stored %d clips, want 2", db.Len())
	}
}

// TestFrameDropsCoastThroughTracker: drops alone (no pixel damage)
// leave gaps the tracker's coasting fills — confirmed tracks still
// come out, and dropped frames never shrink the clip.
func TestFrameDropsCoastThroughTracker(t *testing.T) {
	scene := chaosScene(t)
	clean, err := ProcessSceneStream(scene, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Tracks) == 0 {
		t.Skip("scene produced no tracks; nothing to compare")
	}
	cfg := chaosConfig(faults.New(faults.Config{Seed: 31, FrameDrop: 0.04}))
	faulted, err := ProcessSceneStream(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Degraded.FramesDropped == 0 {
		t.Fatal("no frames dropped at rate 0.04 over 120 frames")
	}
	if len(faulted.Tracks) == 0 {
		t.Fatal("coasting failed to preserve any track through sparse drops")
	}
	if faulted.Video.Len() != clean.Video.Len() {
		t.Fatalf("dropped frames shrank the clip: %d vs %d", faulted.Video.Len(), clean.Video.Len())
	}
	predicted := 0
	for _, tr := range faulted.Tracks {
		for _, o := range tr.Observations {
			if o.Predicted {
				predicted++
			}
		}
	}
	if predicted == 0 {
		t.Fatal("no coasted observations despite dropped frames")
	}
}
