package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"milvideo/internal/event"
	"milvideo/internal/frame"
	"milvideo/internal/render"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
	"milvideo/internal/track"
	"milvideo/internal/window"
)

// StreamConfig tunes the streaming ingestion pipeline: how deep the
// inter-stage channels are (the backpressure bound), how many frames
// travel together per channel operation, and how many workers the
// segmentation stage runs. The settings trade memory and scheduling
// overhead for overlap; they never change the output — the streamed
// pipeline is byte-identical to the sequential one for every setting.
type StreamConfig struct {
	// Depth is the capacity, in batches, of each inter-stage channel.
	// A full channel blocks the producer (backpressure), bounding how
	// far rendering may run ahead of segmentation and segmentation
	// ahead of tracking. 0 means 2.
	Depth int
	// Batch is how many consecutive frames form one unit of channel
	// traffic and reordering. Larger batches amortize channel and
	// scheduling overhead; smaller ones tighten the pipeline. 0 means 8.
	Batch int
	// SegWorkers bounds the segmentation stage's worker pool; 0 sizes
	// it by GOMAXPROCS. Adaptive (stateful) extraction always uses one
	// worker, since its frames must be segmented in display order.
	SegWorkers int
}

// withDefaults resolves zero values.
func (sc StreamConfig) withDefaults(adaptive bool) StreamConfig {
	if sc.Depth <= 0 {
		sc.Depth = 2
	}
	if sc.Batch <= 0 {
		sc.Batch = 8
	}
	if sc.SegWorkers <= 0 {
		sc.SegWorkers = runtime.GOMAXPROCS(0)
	}
	if adaptive {
		sc.SegWorkers = 1
	}
	return sc
}

// ProcessVideoStream runs segmentation, tracking, trajectory sampling
// and window extraction over the clip as a bounded-channel pipeline:
// segmentation fans frame batches out over a worker pool while the
// tracker consumes the results — resequenced into frame order through
// a small reorder buffer — concurrently, so frame i is tracked while
// frame i+k is still being segmented. Output is byte-identical to
// ProcessVideoSequential: tracking sees the same segments in the same
// order regardless of Depth, Batch or SegWorkers.
func ProcessVideoStream(v *frame.Video, cfg Config) (*Clip, error) {
	if v == nil {
		return nil, errors.New("core: nil video")
	}
	if cfg.Model == nil {
		cfg.Model = event.AccidentModel{}
	}
	ex, err := segment.NewExtractor(v, cfg.Segment)
	if err != nil {
		return nil, fmt.Errorf("core: segmentation: %w", err)
	}
	deg := &degCounters{}
	tracks, err := streamTracks(ex, v.Frames, cfg, deg)
	if err != nil {
		return nil, fmt.Errorf("core: tracking: %w", err)
	}
	vss, err := window.Extract(tracks, cfg.Model, v.Len(), cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("core: windowing: %w", err)
	}
	return &Clip{Video: v, Tracks: tracks, VSs: vss, Degraded: deg.snapshot(), Config: cfg}, nil
}

// segBatch is one batch of per-frame segmentation results, sequence-
// numbered for in-order delivery to the tracker.
type segBatch struct {
	seq      int
	segs     [][]segment.Segment
	err      error
	errFrame int
}

// streamTracks is the overlapped segment→track stage pair: frame
// batches are segmented by a worker pool and consumed in sequence
// order by the tracker. Workers may finish batches out of order; a
// reorder buffer (bounded by workers + channel depth, since
// backpressure stops anyone from running further ahead) restores frame
// order, which tracking — a stateful, order-dependent stage — needs.
// Every batch is drained even after an error, so no goroutine leaks.
// Fault injection (cfg.Faults) is applied per frame inside the worker
// pool via segmentUnderFaults, accumulating into deg.
func streamTracks(ex *segment.Extractor, frames []*frame.Gray, cfg Config, deg *degCounters) ([]*track.Track, error) {
	sc := cfg.Stream.withDefaults(ex.Adaptive())
	n := len(frames)
	if n == 0 {
		return nil, track.ErrEmptyVideo
	}
	batches := (n + sc.Batch - 1) / sc.Batch
	workers := min(sc.SegWorkers, batches)

	work := make(chan int, sc.Depth)
	out := make(chan segBatch, sc.Depth)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range work {
				lo := seq * sc.Batch
				hi := min(lo+sc.Batch, n)
				sb := segBatch{seq: seq, segs: make([][]segment.Segment, hi-lo)}
				for i := lo; i < hi; i++ {
					segs, err := segmentUnderFaults(ex, cfg, deg, i, frames[i])
					if err != nil {
						sb.err, sb.errFrame = err, i
						break
					}
					sb.segs[i-lo] = segs
				}
				out <- sb
			}
		}()
	}
	go func() {
		for seq := 0; seq < batches; seq++ {
			work <- seq
		}
		close(work)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	tr := track.NewTracker(cfg.Track)
	pending := make(map[int]segBatch, workers+sc.Depth)
	expect := 0
	var firstErr error
	for sb := range out {
		pending[sb.seq] = sb
		for {
			cur, ok := pending[expect]
			if !ok {
				break
			}
			delete(pending, expect)
			if firstErr == nil {
				if cur.err != nil {
					firstErr = fmt.Errorf("track: frame %d: %w", cur.errFrame, cur.err)
				} else {
					lo := expect * sc.Batch
					for i, segs := range cur.segs {
						if err := tr.Update(lo+i, segs); err != nil {
							firstErr = err
							break
						}
					}
				}
			}
			expect++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return tr.Flush(), nil
}

// errStreamStopped is the sentinel a stage returns when a downstream
// error aborted the pipeline; it never escapes to callers.
var errStreamStopped = errors.New("core: stream stopped")

// ProcessSceneStream renders the scene and runs the vision pipeline on
// the rendered pixels as a streaming pipeline. With a static
// background model the renderer must finish before segmentation can
// start (the temporal-median background samples the whole clip), so
// the overlap is between segmentation and tracking. With an adaptive
// background (cfg.Segment.Adaptive) the model learns from the leading
// frames only, and all three stages overlap: frame i is tracked while
// frame i+j is segmented and frame i+k is still being rendered. Either
// way the output is byte-identical to the sequential path.
func ProcessSceneStream(scene *sim.Scene, cfg Config) (*Clip, error) {
	if scene == nil {
		return nil, errors.New("core: nil scene")
	}
	if !cfg.Segment.Adaptive {
		v, err := render.Video(scene, cfg.Render)
		if err != nil {
			return nil, fmt.Errorf("core: render: %w", err)
		}
		c, err := ProcessVideoStream(v, cfg)
		if err != nil {
			return nil, err
		}
		c.Scene = scene
		return c, nil
	}
	c, err := processSceneAdaptiveStream(scene, cfg)
	if err != nil {
		return nil, err
	}
	c.Scene = scene
	return c, nil
}

// renderedFrame and segmentedFrame are the units of inter-stage
// traffic in the adaptive three-stage pipeline.
type renderedFrame struct {
	i int
	f *frame.Gray
}

type segmentedFrame struct {
	i    int
	f    *frame.Gray
	segs []segment.Segment
	err  error
}

// processSceneAdaptiveStream runs render ∥ segment ∥ track as three
// concurrent stages over bounded channels. The adaptive extractor
// learns its background from the first learnCount frames (exactly the
// frames segment.NewExtractor would use), so the segmentation stage
// holds those frames back, builds the extractor while rendering
// continues, then streams — in display order, as adaptive statefulness
// requires. On any stage error the stop channel unblocks the upstream
// stages so nothing leaks.
func processSceneAdaptiveStream(scene *sim.Scene, cfg Config) (*Clip, error) {
	if cfg.Model == nil {
		cfg.Model = event.AccidentModel{}
	}
	sc := cfg.Stream.withDefaults(true)
	n := len(scene.Frames)
	learnCount := n
	if learnCount > 50 {
		learnCount = 50 // mirrors segment.NewExtractor's adaptive seed
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()
	deg := &degCounters{}

	rendered := make(chan renderedFrame, sc.Depth*sc.Batch)
	segmented := make(chan segmentedFrame, sc.Depth*sc.Batch)
	renderErr := make(chan error, 1)

	go func() {
		defer close(rendered)
		renderErr <- render.Stream(scene, cfg.Render, func(i int, f *frame.Gray) error {
			select {
			case rendered <- renderedFrame{i, f}:
				return nil
			case <-stop:
				return errStreamStopped
			}
		})
	}()

	go func() {
		defer close(segmented)
		send := func(sf segmentedFrame) bool {
			select {
			case segmented <- sf:
				return true
			case <-stop:
				return false
			}
		}
		var ex *segment.Extractor
		var held []renderedFrame
		process := func(rf renderedFrame) bool {
			segs, err := segmentUnderFaults(ex, cfg, deg, rf.i, rf.f)
			if err != nil {
				err = fmt.Errorf("core: tracking: track: frame %d: %w", rf.i, err)
			}
			return send(segmentedFrame{rf.i, rf.f, segs, err}) && err == nil
		}
		for rf := range rendered {
			if ex == nil {
				held = append(held, rf)
				if len(held) < learnCount {
					continue
				}
				lv := &frame.Video{FPS: scene.FPS, Name: scene.Name}
				for _, h := range held {
					lv.Frames = append(lv.Frames, h.f)
				}
				e, err := segment.NewExtractor(lv, cfg.Segment)
				if err != nil {
					send(segmentedFrame{err: fmt.Errorf("core: segmentation: %w", err)})
					return
				}
				ex = e
				for _, h := range held {
					if !process(h) {
						return
					}
				}
				held = nil
				continue
			}
			if !process(rf) {
				return
			}
		}
		// Rendering ended early (validation error): nothing to flush —
		// the consumer will surface the render error.
	}()

	tr := track.NewTracker(cfg.Track)
	frames := make([]*frame.Gray, 0, n)
	var firstErr error
	for sf := range segmented {
		if firstErr != nil {
			continue // draining
		}
		if sf.err != nil {
			firstErr = sf.err
			halt()
			continue
		}
		frames = append(frames, sf.f)
		if err := tr.Update(sf.i, sf.segs); err != nil {
			firstErr = fmt.Errorf("core: tracking: %w", err)
			halt()
		}
	}
	if rerr := <-renderErr; rerr != nil && !errors.Is(rerr, errStreamStopped) {
		return nil, fmt.Errorf("core: render: %w", rerr)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	v := &frame.Video{Frames: frames, FPS: scene.FPS, Name: scene.Name}
	tracks := tr.Flush()
	vss, err := window.Extract(tracks, cfg.Model, v.Len(), cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("core: windowing: %w", err)
	}
	return &Clip{Video: v, Tracks: tracks, VSs: vss, Degraded: deg.snapshot(), Config: cfg}, nil
}
