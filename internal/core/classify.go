package core

import (
	"errors"
	"fmt"
	"sort"

	"milvideo/internal/pca"
	"milvideo/internal/track"
)

// TrackShapeFeatures returns the shape features the PCA vehicle
// classifier consumes (paper §3.1 [13]): mean bounding-box width,
// height, pixel area and aspect ratio over the track's real (non-
// predicted) observations. ok is false when the track has no real
// observations.
func TrackShapeFeatures(t *track.Track) (feats []float64, ok bool) {
	var w, h, a float64
	n := 0
	for _, o := range t.Observations {
		if o.Predicted {
			continue
		}
		w += o.MBR.Width()
		h += o.MBR.Height()
		a += float64(o.Area)
		n++
	}
	if n == 0 {
		return nil, false
	}
	fn := float64(n)
	w, h, a = w/fn, h/fn, a/fn
	if h <= 0 {
		return nil, false
	}
	return []float64{w, h, a, w / h}, true
}

// TrainVehicleClassifier fits the PCA nearest-centroid classifier on
// the clip's tracks, labeled by matching each track to its ground-
// truth vehicle (majority vote within matchRadius) and taking that
// vehicle's body class. k is the number of principal components.
func (c *Clip) TrainVehicleClassifier(matchRadius float64, k int) (*pca.Classifier, error) {
	if c.Scene == nil {
		return nil, errors.New("core: classifier training needs ground truth")
	}
	var samples [][]float64
	var labels []string
	for _, t := range c.Tracks {
		feats, ok := TrackShapeFeatures(t)
		if !ok {
			continue
		}
		cls, ok := c.trackClass(t, matchRadius)
		if !ok {
			continue
		}
		samples = append(samples, feats)
		labels = append(labels, cls)
	}
	if len(samples) == 0 {
		return nil, errors.New("core: no track matched ground truth for training")
	}
	clf, err := pca.Train(samples, labels, k)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return clf, nil
}

// ClassifyTracks predicts a body class for every track with usable
// shape features, returning trackID → class name.
func (c *Clip) ClassifyTracks(clf *pca.Classifier) (map[int]string, error) {
	if clf == nil {
		return nil, errors.New("core: nil classifier")
	}
	out := make(map[int]string)
	for _, t := range c.Tracks {
		feats, ok := TrackShapeFeatures(t)
		if !ok {
			continue
		}
		label, _, err := clf.Predict(feats)
		if err != nil {
			return nil, fmt.Errorf("core: track %d: %w", t.ID, err)
		}
		out[t.ID] = label
	}
	return out, nil
}

// trackClass matches a track to its ground-truth vehicle by majority
// vote and returns the vehicle's class name.
func (c *Clip) trackClass(t *track.Track, matchRadius float64) (string, bool) {
	votes := make(map[int]int)
	classes := make(map[int]string)
	for _, o := range t.Observations {
		if o.Predicted {
			continue
		}
		if o.Frame < 0 || o.Frame >= len(c.Scene.Frames) {
			continue
		}
		bestID, bestD := -1, matchRadius
		for _, v := range c.Scene.Frames[o.Frame].Vehicles {
			if d := o.Centroid.Dist(v.Pos); d <= bestD {
				bestID, bestD = v.ID, d
				classes[v.ID] = v.Class.String()
			}
		}
		if bestID >= 0 {
			votes[bestID]++
		}
	}
	if len(votes) == 0 {
		return "", false
	}
	ids := make([]int, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	best, bestVotes := -1, 0
	for _, id := range ids {
		if votes[id] > bestVotes {
			best, bestVotes = id, votes[id]
		}
	}
	return classes[best], true
}
