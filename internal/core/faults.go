package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/frame"
	"milvideo/internal/segment"
)

// Degradation summarizes the faults a clip absorbed during streaming
// ingest. A clip processed under an enabled injector succeeds with a
// degradation report instead of failing: dropped and exhausted frames
// degrade to empty detection sets (the tracker's coasting state
// bridges the gaps), corrupted frames are segmented as delivered, and
// transient stage errors are retried with bounded backoff. With a nil
// or zero-rate injector every counter is zero and the output is
// byte-identical to the fault-free pipeline.
type Degradation struct {
	// FramesDropped counts frames whose detections were lost outright
	// (injected drop, or a transient failure that survived the whole
	// retry budget).
	FramesDropped int
	// FramesBlackout and FramesCorrupted count frames segmented from
	// damaged pixels (full blackout / salt-and-pepper).
	FramesBlackout  int
	FramesCorrupted int
	// TransientErrors counts injected transient stage failures;
	// Retries counts the retry attempts they triggered;
	// RetriesExhausted counts frames that degraded to an empty
	// detection set after the last retry failed.
	TransientErrors  int
	Retries          int
	RetriesExhausted int
	// DelaysInjected counts latency spikes absorbed by the stage.
	DelaysInjected int
}

// Any reports whether any degradation occurred.
func (d Degradation) Any() bool {
	return d != Degradation{}
}

// String implements fmt.Stringer for degradation reports.
func (d Degradation) String() string {
	return fmt.Sprintf("dropped=%d blackout=%d corrupted=%d transient=%d retries=%d exhausted=%d delays=%d",
		d.FramesDropped, d.FramesBlackout, d.FramesCorrupted,
		d.TransientErrors, d.Retries, d.RetriesExhausted, d.DelaysInjected)
}

// degCounters is the concurrency-safe collector behind Degradation:
// segmentation workers update it in parallel, the pipeline snapshots
// it once tracking finished.
type degCounters struct {
	dropped, blackout, corrupted  atomic.Int64
	transient, retries, exhausted atomic.Int64
	delays                        atomic.Int64
}

// snapshot converts the counters into a Degradation report.
func (dc *degCounters) snapshot() Degradation {
	return Degradation{
		FramesDropped:    int(dc.dropped.Load()),
		FramesBlackout:   int(dc.blackout.Load()),
		FramesCorrupted:  int(dc.corrupted.Load()),
		TransientErrors:  int(dc.transient.Load()),
		Retries:          int(dc.retries.Load()),
		RetriesExhausted: int(dc.exhausted.Load()),
		DelaysInjected:   int(dc.delays.Load()),
	}
}

// retryBudget resolves the bounded-retry parameters.
func (c Config) retryBudget() (retries int, backoff time.Duration) {
	retries = c.StageRetries
	if retries <= 0 {
		retries = 2
	}
	backoff = c.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	return retries, backoff
}

// segmentUnderFaults runs one frame's segmentation with the config's
// fault injector applied: latency spikes stall, dropped frames yield
// an empty detection set, corrupted frames are segmented from a
// damaged private copy (the caller's frame is never touched), and
// transient stage failures are retried with exponential backoff up to
// the budget before degrading to an empty set. With a disabled
// injector this is exactly ex.Segments — the zero-rate path adds no
// allocation, no clock read and no branch beyond the Enabled check,
// which is what the conformance suite's byte-identity test pins.
func segmentUnderFaults(ex *segment.Extractor, cfg Config, deg *degCounters, i int, f *frame.Gray) ([]segment.Segment, error) {
	inj := cfg.Faults
	if !inj.Enabled() {
		return ex.Segments(f)
	}
	if d := inj.StageDelayAt(i); d > 0 {
		deg.delays.Add(1)
		time.Sleep(d)
	}
	switch kind := inj.FrameFaultAt(i); kind {
	case faults.FrameDropped:
		deg.dropped.Add(1)
		return nil, nil
	case faults.FrameBlackout, faults.FrameSaltPepper:
		cp := f.Clone()
		inj.ApplyPixelFault(kind, i, cp.Pix)
		f = cp
		if kind == faults.FrameBlackout {
			deg.blackout.Add(1)
		} else {
			deg.corrupted.Add(1)
		}
	}
	retries, backoff := cfg.retryBudget()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			deg.retries.Add(1)
			time.Sleep(backoff << (attempt - 1))
		}
		if err := inj.SegTransientErr(i, attempt); err != nil {
			deg.transient.Add(1)
			if attempt >= retries {
				// Budget spent: degrade to an empty detection set and
				// let the tracker coast through the gap, rather than
				// failing the whole clip.
				deg.exhausted.Add(1)
				deg.dropped.Add(1)
				return nil, nil
			}
			continue
		}
		return ex.Segments(f)
	}
}
