package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"milvideo/internal/frame"
	"milvideo/internal/render"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
	"milvideo/internal/track"
	"milvideo/internal/window"
)

// clipSignature gob-encodes a clip's learning-visible output (tracks
// and VS database). Two clips with equal signatures produced exactly
// the same observations, confirmations, features and windows.
func clipSignature(t *testing.T, tracks []*track.Track, vss []window.VS) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(tracks); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(vss); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamScenes are the scenarios the identity tests run: both scene
// families normally; under the race detector, one shorter tunnel clip
// (each pipeline run is 10–20× slower there).
func streamScenes(t *testing.T) []*sim.Scene {
	t.Helper()
	frames := 120
	if raceDetectorOn {
		frames = 80
	}
	tun, err := sim.Tunnel(sim.TunnelConfig{
		Frames: frames, Seed: 3, SpawnEvery: 60, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if raceDetectorOn {
		return []*sim.Scene{tun}
	}
	xing, err := sim.Intersection(sim.IntersectionConfig{
		Frames: 100, Seed: 5, SpawnEvery: 40, Collisions: 1, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []*sim.Scene{tun, xing}
}

// TestProcessVideoStreamMatchesSequential is the streaming pipeline's
// core guarantee: for every scene and every channel-depth / batch /
// worker setting, the streamed output is byte-identical to the
// sequential reference.
func TestProcessVideoStreamMatchesSequential(t *testing.T) {
	variants := []StreamConfig{
		{},                                     // defaults
		{Depth: 1, Batch: 1, SegWorkers: 1},    // fully serialized
		{Depth: 2, Batch: 4, SegWorkers: 2},    // small batches, 2 workers
		{Depth: 8, Batch: 16, SegWorkers: 4},   // deep channels, wide pool
		{Depth: 1, Batch: 1000, SegWorkers: 2}, // one batch holds the whole clip
	}
	if raceDetectorOn {
		variants = variants[:3]
	}
	for _, scene := range streamScenes(t) {
		v, err := render.Video(scene, DefaultConfig().Render)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ProcessVideoSequential(v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want := clipSignature(t, seq.Tracks, seq.VSs)
		for _, sc := range variants {
			cfg := DefaultConfig()
			cfg.Stream = sc
			got, err := ProcessVideoStream(v, cfg)
			if err != nil {
				t.Fatalf("scene %s stream %+v: %v", scene.Name, sc, err)
			}
			if !bytes.Equal(want, clipSignature(t, got.Tracks, got.VSs)) {
				t.Fatalf("scene %s stream %+v: output differs from sequential", scene.Name, sc)
			}
		}
	}
}

// TestProcessSceneStreamAdaptiveMatchesSequential checks the fully
// overlapped three-stage pipeline (adaptive background): rendered
// pixels, tracks and VSs must all match the render-then-process
// reference exactly.
func TestProcessSceneStreamAdaptiveMatchesSequential(t *testing.T) {
	for _, scene := range streamScenes(t) {
		cfg := DefaultConfig()
		cfg.Segment.Adaptive = true

		v, err := render.Video(scene, cfg.Render)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ProcessVideoSequential(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := clipSignature(t, seq.Tracks, seq.VSs)

		adaptiveVariants := []StreamConfig{{}, {Depth: 1, Batch: 1}, {Depth: 4, Batch: 2}}
		if raceDetectorOn {
			adaptiveVariants = adaptiveVariants[:1]
		}
		for _, sc := range adaptiveVariants {
			cfg.Stream = sc
			got, err := ProcessSceneStream(scene, cfg)
			if err != nil {
				t.Fatalf("scene %s stream %+v: %v", scene.Name, sc, err)
			}
			if got.Video.Len() != v.Len() {
				t.Fatalf("scene %s: streamed %d frames, want %d", scene.Name, got.Video.Len(), v.Len())
			}
			for i := range v.Frames {
				if !bytes.Equal(v.Frames[i].Pix, got.Video.Frames[i].Pix) {
					t.Fatalf("scene %s frame %d: pixels differ", scene.Name, i)
				}
			}
			if !bytes.Equal(want, clipSignature(t, got.Tracks, got.VSs)) {
				t.Fatalf("scene %s stream %+v: adaptive output differs from sequential", scene.Name, sc)
			}
		}
	}
}

// TestProcessSceneMatchesStream pins the public entry points to the
// streaming implementations.
func TestProcessSceneMatchesStream(t *testing.T) {
	scene := streamScenes(t)[0]
	a, err := ProcessScene(scene, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProcessSceneStream(scene, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clipSignature(t, a.Tracks, a.VSs), clipSignature(t, b.Tracks, b.VSs)) {
		t.Fatal("ProcessScene and ProcessSceneStream disagree")
	}
	if a.Scene == nil {
		t.Fatal("ProcessScene dropped the ground-truth scene")
	}
}

// TestStreamErrorPaths covers the pipeline's failure modes: nil
// inputs, empty clips and mismatched frame sizes, with and without
// concurrency in flight.
func TestStreamErrorPaths(t *testing.T) {
	if _, err := ProcessVideoStream(nil, DefaultConfig()); err == nil {
		t.Fatal("nil video accepted")
	}
	if _, err := ProcessSceneStream(nil, DefaultConfig()); err == nil {
		t.Fatal("nil scene accepted")
	}
	cfg := DefaultConfig()
	cfg.Segment.Adaptive = true
	if _, err := ProcessSceneStream(nil, cfg); err == nil {
		t.Fatal("nil scene accepted (adaptive)")
	}
	empty := &frame.Video{FPS: 25}
	if _, err := ProcessVideoStream(empty, DefaultConfig()); err == nil {
		t.Fatal("empty video accepted")
	}

	// A mid-clip frame-size mismatch must surface as a per-frame
	// tracking error (as in the sequential path) and must not deadlock
	// or leak the worker pool for any stream shape.
	v, err := render.Video(streamScenes(t)[0], DefaultConfig().Render)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*frame.Gray, len(v.Frames))
	copy(frames, v.Frames)
	frames[len(frames)/2] = frame.NewGray(8, 8)
	bad := &frame.Video{Frames: frames, FPS: v.FPS, Name: v.Name}
	for _, sc := range []StreamConfig{{}, {Depth: 1, Batch: 1, SegWorkers: 4}} {
		cfg := DefaultConfig()
		cfg.Stream = sc
		// NewExtractor validates frame sizes, so feed the good video to
		// the extractor and the bad frames to the streaming stage.
		ex, err := segment.NewExtractor(v, cfg.Segment)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := streamTracks(ex, bad.Frames, cfg, &degCounters{}); err == nil {
			t.Fatalf("stream %+v: size mismatch accepted", sc)
		}
	}
}
