package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

// ingestJobs builds n short distinct-seed tunnel jobs.
func ingestJobs(t *testing.T, n int) []IngestJob {
	t.Helper()
	jobs := make([]IngestJob, n)
	for i := range jobs {
		s, err := sim.Tunnel(sim.TunnelConfig{
			Frames: 80, Seed: int64(i + 1), SpawnEvery: 40, WallCrash: 1, FPS: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = IngestJob{Name: "clip-" + string(rune('a'+i)), Scene: s}
	}
	return jobs
}

// TestIngestScenes exercises the batch path end to end: every clip
// lands in the database with a valid record, results arrive in job
// order, and the rendered frames are recycled by default.
func TestIngestScenes(t *testing.T) {
	db := videodb.New()
	jobs := ingestJobs(t, 3)
	results := IngestScenes(db, jobs, IngestOptions{Config: DefaultConfig(), Workers: 2})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Name != jobs[i].Name {
			t.Fatalf("result %d is %q, want %q (order)", i, r.Name, jobs[i].Name)
		}
		if r.Record == nil || r.Record.Frames != 80 {
			t.Fatalf("job %d: bad record %+v", i, r.Record)
		}
		if r.Clip != nil {
			t.Fatalf("job %d: clip retained without KeepClips", i)
		}
		if _, err := db.Clip(r.Name); err != nil {
			t.Fatalf("job %d not stored: %v", i, err)
		}
	}
	if db.Len() != len(jobs) {
		t.Fatalf("db has %d clips, want %d", db.Len(), len(jobs))
	}
}

// TestIngestScenesIsolatesFailures injects a failing job (nil scene)
// and a duplicate name into a batch: each failure stays in its own
// result slot and the healthy clips still land in the database.
func TestIngestScenesIsolatesFailures(t *testing.T) {
	db := videodb.New()
	jobs := ingestJobs(t, 3)
	jobs[1] = IngestJob{Name: "broken", Scene: nil}
	jobs = append(jobs, IngestJob{Name: jobs[0].Name, Scene: jobs[2].Scene}) // duplicate name

	results := IngestScenes(db, jobs, IngestOptions{Config: DefaultConfig(), Workers: 1})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), `"broken"`) {
		t.Fatalf("nil-scene job error = %v, want named error", results[1].Err)
	}
	if results[3].Err == nil || !errors.Is(results[3].Err, videodb.ErrDuplicate) {
		t.Fatalf("duplicate job error = %v, want ErrDuplicate", results[3].Err)
	}
	if db.Len() != 2 {
		t.Fatalf("db has %d clips, want the 2 healthy ones", db.Len())
	}
}

// TestIngestScenesKeepClips retains full clips on request and falls
// back to the scene name when the job has none.
func TestIngestScenesKeepClips(t *testing.T) {
	jobs := ingestJobs(t, 1)
	jobs[0].Name = "" // fall back to scene name
	results := IngestScenes(nil, jobs, IngestOptions{Config: DefaultConfig(), KeepClips: true})
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Name != jobs[0].Scene.Name {
		t.Fatalf("name %q, want scene name %q", r.Name, jobs[0].Scene.Name)
	}
	if r.Clip == nil || r.Clip.Video.Len() != 80 {
		t.Fatal("KeepClips did not retain the processed clip")
	}
}

// TestIngestScenesConcurrentDB runs two batches into one catalog
// concurrently while a reader drains names — the shared-DB ingest
// scenario the locking must survive (run with -race).
func TestIngestScenesConcurrentDB(t *testing.T) {
	db := videodb.New()
	a := ingestJobs(t, 2)
	b := ingestJobs(t, 2)
	b[0].Name, b[1].Name = "other-a", "other-b"

	var wg sync.WaitGroup
	wg.Add(3)
	errs := make([][]IngestResult, 2)
	go func() { defer wg.Done(); errs[0] = IngestScenes(db, a, IngestOptions{Config: DefaultConfig()}) }()
	go func() { defer wg.Done(); errs[1] = IngestScenes(db, b, IngestOptions{Config: DefaultConfig()}) }()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			db.Names()
			db.Len()
		}
	}()
	wg.Wait()
	for _, batch := range errs {
		for _, r := range batch {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	if db.Len() != 4 {
		t.Fatalf("db has %d clips, want 4", db.Len())
	}
}
