package core

import (
	"math/rand"
	"testing"

	"milvideo/internal/frame"
	"milvideo/internal/retrieval"
	"milvideo/internal/window"
)

// TestPipelineOnBlankVideo: a clip with no moving objects must flow
// through the pipeline without error and produce an empty (but
// well-formed) VS database.
func TestPipelineOnBlankVideo(t *testing.T) {
	v := &frame.Video{FPS: 25, Name: "blank"}
	for i := 0; i < 80; i++ {
		f := frame.NewGray(160, 120)
		f.Fill(100)
		v.Frames = append(v.Frames, f)
	}
	c, err := ProcessVideo(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tracks) != 0 {
		t.Fatalf("phantom tracks on a blank clip: %d", len(c.Tracks))
	}
	if window.CountTS(c.VSs) != 0 {
		t.Fatal("phantom TSs")
	}
	// A session over the empty database still runs (everything is
	// irrelevant).
	sess := c.Session(retrieval.FuncOracle(func(window.VS) bool { return false }), 5)
	res, err := sess.Run(retrieval.MILEngine{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.Accuracy != 0 {
			t.Fatalf("accuracy on blank clip: %v", r.Accuracy)
		}
	}
}

// TestPipelineOnPureNoise: frames of saturated random noise must not
// crash any stage; whatever spurious blobs survive morphology produce
// at most short tentative tracks.
func TestPipelineOnPureNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := &frame.Video{FPS: 25, Name: "noise"}
	for i := 0; i < 60; i++ {
		f := frame.NewGray(160, 120)
		for p := range f.Pix {
			f.Pix[p] = uint8(rng.Intn(256))
		}
		v.Frames = append(v.Frames, f)
	}
	c, err := ProcessVideo(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Saturated noise differs from the median background almost
	// everywhere, so the whole frame becomes one giant foreground
	// blob whose centroid sits stably at the center — the pipeline
	// legitimately tracks it. The invariant worth holding is that the
	// noise does not shatter into many phantom vehicles.
	if len(c.Tracks) > 10 {
		t.Fatalf("noise shattered into %d tracks", len(c.Tracks))
	}
}

// TestPipelineOnInconsistentUser: an oracle that contradicts itself
// across rounds (answers depend on call count) must not break the
// session; accuracies just reflect the noise.
func TestPipelineOnInconsistentUser(t *testing.T) {
	c := processed(t)
	calls := 0
	flaky := retrieval.FuncOracle(func(vs window.VS) bool {
		calls++
		return calls%3 == 0
	})
	sess := c.Session(flaky, 10)
	res, err := sess.Run(retrieval.MILEngine{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds: %d", len(res.Rounds))
	}
}
