package core

import (
	"fmt"
	"runtime"
	"sync"

	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

// IngestJob names one scene to ingest. An empty Name falls back to the
// scene's own name.
type IngestJob struct {
	Name  string
	Scene *sim.Scene
}

// IngestResult reports one job's outcome. Exactly one of Record and
// Err is nil: a failed clip carries its error and never reaches the
// database, without affecting the other jobs in the batch.
type IngestResult struct {
	Name   string
	Record *videodb.ClipRecord
	// Clip holds the full processed clip only when
	// IngestOptions.KeepClips is set; by default the pixel frames are
	// recycled to the frame pool once the record is built.
	Clip *Clip
	// Degraded reports the faults this clip absorbed during streaming
	// ingest (frame drops, corruption, retried transient errors).
	// Under an enabled Config.Faults injector a clip degrades — its
	// record still reaches the database with this report attached —
	// instead of failing the batch; Err stays nil.
	Degraded Degradation
	Err      error
}

// IngestOptions configures a batch ingest.
type IngestOptions struct {
	// Config is the per-clip pipeline configuration.
	Config Config
	// Workers bounds the clip-level worker pool; 0 sizes it by
	// GOMAXPROCS (capped at the job count). Each worker runs the full
	// streaming pipeline for one clip at a time.
	Workers int
	// KeepClips retains each processed Clip (pixels, tracks, VSs) in
	// its result. Off by default: ingestion's product is the database
	// record, and recycling the rendered frames keeps the peak memory
	// of a large batch near one clip's worth per worker.
	KeepClips bool
}

// IngestScenes processes a batch of scenes concurrently on a bounded
// worker pool and stores each successful clip's record in db (which
// may be receiving clips from other goroutines at the same time; pass
// nil to skip storage). Jobs are isolated: a clip that fails to
// render, process, or store reports its error in its own result slot
// and the rest of the batch proceeds. Results are returned in job
// order.
func IngestScenes(db *videodb.DB, jobs []IngestJob, opt IngestOptions) []IngestResult {
	results := make([]IngestResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = ingestOne(db, jobs[i], opt)
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// ingestOne runs one job end to end: process, record, store, recycle.
func ingestOne(db *videodb.DB, job IngestJob, opt IngestOptions) IngestResult {
	name := job.Name
	if name == "" && job.Scene != nil {
		name = job.Scene.Name
	}
	res := IngestResult{Name: name}
	fail := func(err error) IngestResult {
		res.Err = fmt.Errorf("core: ingest %q: %w", name, err)
		return res
	}
	clip, err := ProcessSceneStream(job.Scene, opt.Config)
	if err != nil {
		return fail(err)
	}
	res.Degraded = clip.Degraded
	rec, err := clip.Record(name)
	if err != nil {
		return fail(err)
	}
	if db != nil {
		if err := db.Add(rec); err != nil {
			return fail(err)
		}
	}
	res.Record = rec
	if opt.KeepClips {
		res.Clip = clip
	} else {
		clip.Video.Recycle()
	}
	return res
}
