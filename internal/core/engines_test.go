package core

import (
	"errors"
	"testing"

	"milvideo/internal/retrieval"
	"milvideo/internal/sim"
)

// TestEngineByName covers the registry: every listed name resolves,
// the empty name selects the default, unknown names fail typed, and
// the cache reaches the MIL engine.
func TestEngineByName(t *testing.T) {
	for _, name := range EngineNames() {
		e, err := EngineByName(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Name() == "" {
			t.Fatalf("%s: empty engine name", name)
		}
	}
	def, err := EngineByName("", nil)
	if err != nil {
		t.Fatal(err)
	}
	mil, err := EngineByName(DefaultEngine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != mil.Name() {
		t.Fatalf("default engine %q, want %q", def.Name(), mil.Name())
	}
	if _, err := EngineByName("nope", nil); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("unknown engine: %v", err)
	}
	cache := retrieval.NewMILCache()
	e, err := EngineByName("mil", cache)
	if err != nil {
		t.Fatal(err)
	}
	if e.(retrieval.MILEngine).Cache != cache {
		t.Fatal("cache not wired into MIL engine")
	}
}

// TestIncidentOverlap pins the shared relevance test used by oracles
// on both sides of the wire.
func TestIncidentOverlap(t *testing.T) {
	incs := []sim.Incident{{Type: sim.WallCrash, Start: 10, End: 20}}
	acc := func(tp sim.IncidentType) bool { return tp.IsAccident() }
	if !IncidentOverlap(incs, acc, 15, 30, 5) {
		t.Fatal("overlapping interval rejected")
	}
	if IncidentOverlap(incs, acc, 19, 30, 5) {
		t.Fatal("2-frame overlap accepted at need 5")
	}
	if IncidentOverlap(incs, func(sim.IncidentType) bool { return false }, 0, 100, 1) {
		t.Fatal("pred ignored")
	}
	if !IncidentOverlap(incs, nil, 20, 25, 0) {
		t.Fatal("nil pred / zero need should accept any accident overlap")
	}
}
