// Package stats provides the summary statistics used across the
// retrieval framework: means, standard deviations, min/max and
// per-dimension feature statistics. The weighted relevance-feedback
// baseline (paper §6.2) derives its feature weights from the inverse
// standard deviation of the relevant examples' features, so these
// helpers sit on its hot path.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or an error when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs (dividing by n, not
// n−1); the paper's weighting scheme does not distinguish, and the
// population form is defined even for a single sample.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the descriptive statistics of one variable.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median       float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	min, max, _ := MinMax(xs)
	med, _ := Quantile(xs, 0.5)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: min, Max: max, Median: med}, nil
}

// String implements fmt.Stringer for compact experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// ColumnStats computes per-dimension mean and standard deviation for a
// set of equal-length feature vectors. It is the statistic the
// weighted-RF baseline turns into feature weights. All rows must have
// the same dimensionality.
func ColumnStats(rows [][]float64) (means, stds []float64, err error) {
	if len(rows) == 0 {
		return nil, nil, ErrEmpty
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, nil, fmt.Errorf("stats: zero-dimensional rows")
	}
	for i, r := range rows {
		if len(r) != dim {
			return nil, nil, fmt.Errorf("stats: row %d has dimension %d, want %d", i, len(r), dim)
		}
	}
	means = make([]float64, dim)
	stds = make([]float64, dim)
	for _, r := range rows {
		for j, v := range r {
			means[j] += v
		}
	}
	n := float64(len(rows))
	for j := range means {
		means[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / n)
	}
	return means, stds, nil
}

// Accuracy returns the fraction of true values in labels, the paper's
// §6.2 "accuracy" measure when applied to the relevance labels of the
// top-n returned video sequences.
func Accuracy(labels []bool) (float64, error) {
	if len(labels) == 0 {
		return 0, ErrEmpty
	}
	k := 0
	for _, l := range labels {
		if l {
			k++
		}
	}
	return float64(k) / float64(len(labels)), nil
}
