package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Fatalf("got %v", m)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("variance: got %v", v)
	}
	sd, _ := StdDev(xs)
	if sd != 2 {
		t.Fatalf("stddev: got %v", sd)
	}
	// Single sample: population variance is defined and zero.
	v1, err := Variance([]float64{5})
	if err != nil || v1 != 0 {
		t.Fatalf("single: %v %v", v1, err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("got %v %v", min, max)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 3 {
		t.Fatalf("median: got %v", med)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Fatalf("extremes: %v %v", q0, q1)
	}
	// Interpolation: median of {1,2,3,4} is 2.5.
	m, _ := Quantile([]float64{4, 3, 2, 1}, 0.5)
	if m != 2.5 {
		t.Fatalf("interp: got %v", m)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q must error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
	one, _ := Quantile([]float64{42}, 0.9)
	if one != 42 {
		t.Fatalf("singleton: got %v", one)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted its input in place")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("got %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
}

func TestColumnStats(t *testing.T) {
	rows := [][]float64{
		{1, 10},
		{3, 10},
	}
	means, stds, err := ColumnStats(rows)
	if err != nil {
		t.Fatal(err)
	}
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("means: %v", means)
	}
	if stds[0] != 1 || stds[1] != 0 {
		t.Fatalf("stds: %v", stds)
	}
	if _, _, err := ColumnStats(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
	if _, _, err := ColumnStats([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, _, err := ColumnStats([][]float64{{}}); err == nil {
		t.Fatal("zero-dim rows must error")
	}
}

func TestAccuracy(t *testing.T) {
	a, err := Accuracy([]bool{true, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if a != 0.75 {
		t.Fatalf("got %v", a)
	}
	if _, err := Accuracy(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: got %v", err)
	}
}

func TestMeanShiftProperty(t *testing.T) {
	// Mean is translation-equivariant, variance translation-invariant.
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = xs[i] + shift
		}
		mx, _ := Mean(xs)
		my, _ := Mean(ys)
		vx, _ := Variance(xs)
		vy, _ := Variance(ys)
		return math.Abs(my-(mx+shift)) < 1e-6 && math.Abs(vy-vx) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
