package ingestd

import (
	"fmt"
	"math/rand"
	"testing"

	"milvideo/internal/index"
	"milvideo/internal/videodb"
)

// TestFeedApplyEquivalence is the daemon-apply-path property test:
// for ANY interleaving of live segment appends and retention
// evictions, the incrementally maintained index (the exact VS
// databases the daemon feeds to BagIndex.Update) answers identically
// to an index built fresh over the surviving clips. Exercised for
// both index kinds, in a delta-only regime (high rebuild threshold)
// and a compaction-heavy regime (low threshold, rebuilds must fire).
func TestFeedApplyEquivalence(t *testing.T) {
	type variant struct {
		name         string
		kind         index.Kind
		opt          index.Options
		wantRebuilds bool
	}
	// Exhaustive probe depth makes IVF exact regardless of how its
	// coarse partition was trained, so maintained (trained on the
	// initial feed) and fresh (trained on the current feed) indexes
	// are directly comparable.
	ivfExhaustive := index.Options{NProbe: 1 << 20, PerProbeK: 1 << 20}
	variants := []variant{
		{name: "vptree/delta", kind: index.KindVPTree, opt: index.Options{RebuildFraction: 100}},
		{name: "ivf/delta", kind: index.KindIVF, opt: func() index.Options {
			o := ivfExhaustive
			o.RebuildFraction = 100
			return o
		}()},
		{name: "vptree/compacting", kind: index.KindVPTree, opt: index.Options{RebuildFraction: 0.05}, wantRebuilds: true},
		{name: "ivf/compacting", kind: index.KindIVF, opt: func() index.Options {
			o := ivfExhaustive
			o.RebuildFraction = 0.05
			return o
		}(), wantRebuilds: true},
	}

	for _, v := range variants {
		for _, seed := range []int64{11, 29, 53} {
			rng := rand.New(rand.NewSource(seed))
			f := newFeedState("live")
			recs := map[string]*videodb.ClipRecord{}
			lookup := lookupMap(recs)
			var bi *index.BagIndex
			nextSeq := uint64(0)

			for step := 0; step < 30; step++ {
				// Random interleaving: mostly appends, evictions
				// whenever more than one segment survives (the daemon
				// never evicts its newest segment either).
				if len(f.segs) > 1 && rng.Float64() < 0.4 {
					sm, _ := f.evictOldest()
					delete(recs, sm.Name)
				} else {
					name := fmt.Sprintf("live-seg-%06d", nextSeq)
					rec := synthSeg(rng, name, 1+rng.Intn(4), 6)
					recs[name] = rec
					f.append(name, nextSeq, rec.Frames, len(rec.VSs))
					nextSeq++
				}

				vss, err := f.buildVSs(lookup)
				if err != nil {
					t.Fatalf("%s seed %d step %d: %v", v.name, seed, step, err)
				}
				if bi == nil {
					bi, err = index.Build(vss, v.kind, v.opt)
					if err != nil {
						t.Fatalf("%s seed %d: initial build: %v", v.name, seed, err)
					}
					continue
				}
				if _, err := bi.Update(vss); err != nil {
					t.Fatalf("%s seed %d step %d: update: %v", v.name, seed, step, err)
				}
				fresh, err := index.Build(vss, v.kind, v.opt)
				if err != nil {
					t.Fatalf("%s seed %d step %d: fresh build: %v", v.name, seed, step, err)
				}
				if bi.Bags() != fresh.Bags() || bi.Instances() != fresh.Instances() {
					t.Fatalf("%s seed %d step %d: bags/instances %d/%d vs fresh %d/%d",
						v.name, seed, step, bi.Bags(), bi.Instances(), fresh.Bags(), fresh.Instances())
				}
				if bi.Bags() != len(vss) {
					t.Fatalf("%s seed %d step %d: %d bags for %d live VSs",
						v.name, seed, step, bi.Bags(), len(vss))
				}

				// Probe with one live instance and one random query.
				var probes [][]float64
				for _, vs := range vss {
					if len(vs.TSs) > 0 {
						probes = append(probes, vs.TSs[0].Flat())
						break
					}
				}
				q := make([]float64, 6)
				for d := range q {
					q[d] = rng.NormFloat64()
				}
				probes = append(probes, q)
				c := len(vss)
				got, _ := bi.Candidates(probes, c)
				want, _ := fresh.Candidates(probes, c)
				if len(got) != len(want) {
					t.Fatalf("%s seed %d step %d: %d candidates vs fresh %d\n got=%v\nwant=%v",
						v.name, seed, step, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s seed %d step %d pos %d: candidate %d vs fresh %d\n got=%v\nwant=%v",
							v.name, seed, step, i, got[i], want[i], got, want)
					}
				}
			}

			m := bi.Maintenance()
			if v.wantRebuilds && m.Rebuilds == 0 {
				t.Fatalf("%s seed %d: low threshold never compacted (%+v)", v.name, seed, m)
			}
			if !v.wantRebuilds {
				if m.Rebuilds != 0 {
					t.Fatalf("%s seed %d: high threshold rebuilt %d times", v.name, seed, m.Rebuilds)
				}
				if m.Applies == 0 {
					t.Fatalf("%s seed %d: no deltas applied (%+v)", v.name, seed, m)
				}
			}
		}
	}
}
