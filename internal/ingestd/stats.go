package ingestd

import (
	"sync"
	"time"
)

// stalenessBounds are the histogram bucket upper bounds in
// milliseconds. Queryable staleness is dominated by pipeline
// processing (hundreds of milliseconds per segment at the default
// sizes), so the buckets resolve that range and leave headroom for
// queue waits under backpressure.
var stalenessBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram is a fixed-bucket latency histogram with an exact
// maximum. The daemon cannot reuse the server package's histogram —
// the import points the other way — so it keeps its own, with the
// same bucket-interpolated percentile estimate.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // len(stalenessBounds)+1; last is overflow
	total  uint64
	maxMs  float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(stalenessBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(stalenessBounds) && ms > stalenessBounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	if ms > h.maxMs {
		h.maxMs = ms
	}
}

// quantileLocked returns the upper bound of the bucket holding the
// q-quantile observation (the overflow bucket reports the exact max).
func (h *histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if rank < seen {
			if i < len(stalenessBounds) {
				return stalenessBounds[i]
			}
			return h.maxMs
		}
	}
	return h.maxMs
}

func (h *histogram) summary() StalenessSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return StalenessSummary{
		Count: h.total,
		P50Ms: h.quantileLocked(0.50),
		P90Ms: h.quantileLocked(0.90),
		P99Ms: h.quantileLocked(0.99),
		MaxMs: h.maxMs,
	}
}

// StalenessSummary reports the queryable-staleness distribution:
// for each committed segment, the time from source arrival to the
// moment its windows were applied to the live index. Percentiles are
// bucket upper bounds (conservative).
type StalenessSummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Stats is the daemon's lifecycle state as served under /v1/stats.
// Counters are cumulative since daemon start; gauges describe the
// current feed.
type Stats struct {
	// State is "idle" (created), "running", "drained" (source
	// exhausted) or "stopped".
	State    string `json:"state"`
	FeedClip string `json:"feed_clip"`

	// Admission.
	Arrived           uint64 `json:"arrived"`
	Shed              uint64 `json:"shed"`
	BackpressureWaits uint64 `json:"backpressure_waits"`
	SourceErrors      uint64 `json:"source_errors"`

	// Pipeline.
	ProcessFailures  uint64 `json:"process_failures"`
	DegradedSegments uint64 `json:"degraded_segments"`
	EmptySegments    uint64 `json:"empty_segments"`

	// Commit.
	Committed      uint64 `json:"committed"`
	CommitRetries  uint64 `json:"commit_retries"`
	CommitsDropped uint64 `json:"commits_dropped"`

	// Retention.
	Evictions       uint64 `json:"evictions"`
	EvictedSegments uint64 `json:"evicted_segments"`

	// Live-index application.
	IndexApplies  uint64 `json:"index_applies"`
	IndexInserted uint64 `json:"index_inserted"`
	IndexDeleted  uint64 `json:"index_deleted"`
	Compactions   uint64 `json:"compactions"`
	ApplyErrors   uint64 `json:"apply_errors"`

	// Snapshots.
	Snapshots        uint64 `json:"snapshots"`
	SnapshotFailures uint64 `json:"snapshot_failures"`

	// Feed gauges.
	LiveSegments int    `json:"live_segments"`
	LiveVSs      int    `json:"live_vss"`
	FeedFrames   int    `json:"feed_frames"`
	NextSeq      uint64 `json:"next_seq"`

	// Staleness.
	MaxStalenessMs      int64            `json:"max_staleness_ms"`
	StalenessViolations uint64           `json:"staleness_violations"`
	Staleness           StalenessSummary `json:"staleness"`
}
