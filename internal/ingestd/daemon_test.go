package ingestd

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// recordingApplier captures every live-index application.
type recordingApplier struct {
	mu      sync.Mutex
	applies []struct {
		clip string
		vss  int
		gen  uint64
	}
	dropped []string
}

func (a *recordingApplier) ApplyLive(clip string, vss []window.VS, gen uint64) (ApplyOutcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.applies = append(a.applies, struct {
		clip string
		vss  int
		gen  uint64
	}{clip, len(vss), gen})
	return ApplyOutcome{Entries: 1, Inserted: len(vss)}, nil
}

func (a *recordingApplier) DropClips(names []string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dropped = append(a.dropped, names...)
	return len(names)
}

// TestDaemonEndToEnd drains a finite simulated feed through the full
// daemon: every segment commits in sequence order, retention holds
// the cap, the feed record stays valid and monotonic, the applier
// sees every commit at increasing generations, and the final snapshot
// recovers into a daemon that resumes numbering.
func TestDaemonEndToEnd(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "catalog.db")
	db := videodb.New()
	const limit = 6
	d, err := New(Config{
		DB:             db,
		Source:         &SimSource{Frames: 50, Seed: 7, Limit: limit},
		QueueDepth:     2,
		Workers:        2,
		RetainSegments: 3,
		SnapshotPath:   snap,
		SnapshotEvery:  time.Hour, // only the final snapshot matters here
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := &recordingApplier{}
	if err := d.Start(context.Background(), ap); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background(), ap); err == nil {
		t.Fatal("second Start accepted")
	}
	d.Wait()

	s := d.Stats()
	if s.State != "drained" {
		t.Fatalf("state %q after source EOF", s.State)
	}
	if s.Arrived != limit || s.Committed != limit {
		t.Fatalf("arrived %d committed %d, want %d", s.Arrived, s.Committed, limit)
	}
	if s.Shed != 0 || s.CommitsDropped != 0 || s.ProcessFailures != 0 {
		t.Fatalf("fault-free run lost segments: %+v", s)
	}
	if s.LiveSegments != 3 || s.EvictedSegments != limit-3 || s.Evictions == 0 {
		t.Fatalf("retention: live %d evicted %d batches %d, want 3/%d/>0",
			s.LiveSegments, s.EvictedSegments, s.Evictions, limit-3)
	}
	if s.Staleness.Count != limit {
		t.Fatalf("staleness observed %d commits, want %d", s.Staleness.Count, limit)
	}

	// Catalog: the feed plus the surviving segment records.
	if db.Len() != 1+3 {
		t.Fatalf("catalog holds %d clips, want 4", db.Len())
	}
	feed, err := db.Clip(d.FeedClip())
	if err != nil {
		t.Fatal(err)
	}
	if err := feed.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(feed.VSs); i++ {
		if feed.VSs[i].Index <= feed.VSs[i-1].Index {
			t.Fatal("feed VS indices not strictly increasing")
		}
	}

	// Applier saw every commit, at strictly increasing generations,
	// and the evictions.
	ap.mu.Lock()
	if len(ap.applies) != limit {
		t.Fatalf("applier saw %d applies, want %d", len(ap.applies), limit)
	}
	for i, call := range ap.applies {
		if call.clip != d.FeedClip() {
			t.Fatalf("apply %d targeted %q", i, call.clip)
		}
		if i > 0 && call.gen <= ap.applies[i-1].gen {
			t.Fatalf("apply %d generation %d did not advance past %d", i, call.gen, ap.applies[i-1].gen)
		}
	}
	if len(ap.dropped) != limit-3 {
		t.Fatalf("applier saw %d dropped clips, want %d", len(ap.dropped), limit-3)
	}
	ap.mu.Unlock()

	d.Stop()
	if got := d.Stats().State; got != "stopped" {
		t.Fatalf("state %q after Stop", got)
	}

	// Recovery: a fresh daemon over the snapshot resumes where this
	// one stopped.
	db2 := videodb.New()
	d2, err := New(Config{
		DB:           db2,
		Source:       &SimSource{Frames: 50, Seed: 7, Limit: 1},
		SnapshotPath: snap,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2 := d2.Stats()
	if s2.NextSeq != limit {
		t.Fatalf("recovered next seq %d, want %d", s2.NextSeq, limit)
	}
	if s2.LiveSegments != 3 || db2.Len() != 4 {
		t.Fatalf("recovered %d segments over %d clips, want 3 over 4", s2.LiveSegments, db2.Len())
	}

	// The recovered daemon keeps committing under the old numbering:
	// the next segment gets seq 6 and a fresh, higher VS range.
	if err := d2.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d2.Wait()
	if got := d2.Stats().Committed; got != 1 {
		t.Fatalf("recovered daemon committed %d, want 1", got)
	}
	if _, err := db2.Clip("live-seg-000006"); err != nil {
		t.Fatalf("post-recovery segment name: %v", err)
	}
	feed2, err := db2.Clip(d2.FeedClip())
	if err != nil {
		t.Fatal(err)
	}
	if err := feed2.Validate(); err != nil {
		t.Fatal(err)
	}
	if feed2.Frames <= feed.Frames {
		t.Fatal("recovered feed did not extend the frame span")
	}
}

// TestDaemonFaults runs the same finite feed under deterministic
// admission, commit and snapshot faults and checks exact accounting:
// every arrived segment is shed, dropped or committed — never lost.
func TestDaemonFaults(t *testing.T) {
	db := videodb.New()
	const limit = 8
	inj := faults.New(faults.Config{Seed: 99, AdmitDrop: 0.3, CommitFail: 0.5})
	d, err := New(Config{
		DB:             db,
		Source:         &SimSource{Frames: 50, Seed: 3, Limit: limit},
		Workers:        2,
		RetainSegments: 4,
		CommitRetries:  1,
		Faults:         inj,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d.Wait()
	s := d.Stats()
	if s.Arrived != limit {
		t.Fatalf("arrived %d, want %d", s.Arrived, limit)
	}
	if s.Shed == 0 {
		t.Fatal("admission shedding never fired at rate 0.3")
	}
	if s.Shed+s.Committed+s.CommitsDropped+s.EmptySegments != limit {
		t.Fatalf("segments unaccounted for: %+v", s)
	}
	if s.Committed > 0 {
		feed, err := db.Clip(d.FeedClip())
		if err != nil {
			t.Fatal(err)
		}
		if err := feed.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
