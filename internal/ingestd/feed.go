package ingestd

import (
	"encoding/json"
	"fmt"

	"milvideo/internal/sim"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// StateKey is the Meta key under which the feed clip record carries
// the daemon's bookkeeping. It is the only key the feed record's Meta
// holds: gob encodes maps in iteration order, so a single-key map is
// the largest Meta that still snapshots to deterministic bytes — the
// property the chaos conformance suite pins (same fault schedule ⇒
// byte-identical catalog).
const StateKey = "ingestd.state"

// segMeta locates one committed segment inside the feed clip: the
// catalog name of its standalone record, its source sequence number,
// and the frame / VS-index offsets its windows occupy in the merged
// feed. Offsets are assigned once at commit and never reused — the
// monotonic VS numbering is what keeps incremental index maintenance
// (and the MIL kernel caches keyed by bag identity) sound across
// evictions.
type segMeta struct {
	Name      string `json:"name"`
	Seq       uint64 `json:"seq"`
	FrameBase int    `json:"frame_base"`
	VSBase    int    `json:"vs_base"`
	VSCount   int    `json:"vs_count"`
	Frames    int    `json:"frames"`
}

// feedJSON is the persisted form of feedState, stored under StateKey
// so a restarted daemon resumes numbering where the snapshot left off.
type feedJSON struct {
	NextSeq   uint64    `json:"next_seq"`
	NextVS    int       `json:"next_vs"`
	FrameBase int       `json:"frame_base"`
	Segments  []segMeta `json:"segments"`
}

// feedState is the pure bookkeeping of the live feed clip: which
// segments survive, where each sits in the merged frame/VS numbering,
// and the high-water marks that make every assignment monotonic. It
// has no locks, no clock and no I/O — the daemon serializes access,
// and the property tests drive it directly through arbitrary
// append/evict interleavings.
type feedState struct {
	feedName  string
	modelName string
	fps       float64
	window    window.Config

	nextSeq   uint64
	nextVS    int
	frameBase int
	segs      []segMeta // surviving segments, oldest first
}

// newFeedState returns empty bookkeeping for a feed clip.
func newFeedState(feedName string) *feedState {
	return &feedState{feedName: feedName}
}

// append admits one committed segment at the end of the feed,
// assigning its frame and VS-index offsets. The segment's own record
// keeps local numbering (frames from 0, VS indices from 0); the
// returned segMeta says where those land in the feed.
func (f *feedState) append(name string, seq uint64, frames, vsCount int) segMeta {
	sm := segMeta{
		Name:      name,
		Seq:       seq,
		FrameBase: f.frameBase,
		VSBase:    f.nextVS,
		VSCount:   vsCount,
		Frames:    frames,
	}
	f.segs = append(f.segs, sm)
	f.frameBase += frames
	f.nextVS += vsCount
	if seq >= f.nextSeq {
		f.nextSeq = seq + 1
	}
	return sm
}

// evictOldest removes and returns the oldest surviving segment.
// Offsets are not reclaimed: the feed's frame count and VS numbering
// only ever grow.
func (f *feedState) evictOldest() (segMeta, bool) {
	if len(f.segs) == 0 {
		return segMeta{}, false
	}
	sm := f.segs[0]
	f.segs = f.segs[1:]
	return sm, true
}

// liveVSs is the VS count over surviving segments.
func (f *feedState) liveVSs() int {
	n := 0
	for _, sm := range f.segs {
		n += sm.VSCount
	}
	return n
}

// buildVSs assembles the feed clip's VS database from the surviving
// segments: each segment's local VSs shifted to their feed offsets.
// lookup resolves a segment name to its immutable record. The TS
// slices are shared with the segment records (safe under the videodb
// immutability contract); the VS headers are fresh copies.
func (f *feedState) buildVSs(lookup func(name string) (*videodb.ClipRecord, error)) ([]window.VS, error) {
	out := make([]window.VS, 0, f.liveVSs())
	for _, sm := range f.segs {
		rec, err := lookup(sm.Name)
		if err != nil {
			return nil, fmt.Errorf("ingestd: feed segment %q: %w", sm.Name, err)
		}
		if len(rec.VSs) != sm.VSCount {
			return nil, fmt.Errorf("ingestd: feed segment %q has %d VSs, bookkeeping says %d",
				sm.Name, len(rec.VSs), sm.VSCount)
		}
		for _, vs := range rec.VSs {
			vs.Index = sm.VSBase + vs.Index
			vs.StartFrame += sm.FrameBase
			vs.EndFrame += sm.FrameBase
			out = append(out, vs)
		}
	}
	return out, nil
}

// buildRecord assembles the feed clip's catalog record over the
// surviving segments: merged VSs, merged incident log (shifted to
// feed frame numbering), and the bookkeeping under StateKey. The feed
// spans every frame ever committed (frameBase), so evictions never
// invalidate surviving windows' intervals.
func (f *feedState) buildRecord(lookup func(name string) (*videodb.ClipRecord, error)) (*videodb.ClipRecord, error) {
	if len(f.segs) == 0 {
		return nil, fmt.Errorf("ingestd: feed %q has no surviving segments", f.feedName)
	}
	vss, err := f.buildVSs(lookup)
	if err != nil {
		return nil, err
	}
	var incidents []sim.Incident
	for _, sm := range f.segs {
		rec, err := lookup(sm.Name)
		if err != nil {
			return nil, fmt.Errorf("ingestd: feed segment %q: %w", sm.Name, err)
		}
		for _, inc := range rec.Incidents {
			inc.Start += sm.FrameBase
			inc.End += sm.FrameBase
			incidents = append(incidents, inc)
		}
	}
	state, err := json.Marshal(feedJSON{
		NextSeq:   f.nextSeq,
		NextVS:    f.nextVS,
		FrameBase: f.frameBase,
		Segments:  f.segs,
	})
	if err != nil {
		return nil, fmt.Errorf("ingestd: encode feed state: %w", err)
	}
	rec := &videodb.ClipRecord{
		Name:      f.feedName,
		Frames:    f.frameBase,
		FPS:       f.fps,
		ModelName: f.modelName,
		Window:    f.window,
		VSs:       vss,
		Incidents: incidents,
		Meta:      map[string]string{StateKey: string(state)},
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("ingestd: feed record: %w", err)
	}
	return rec, nil
}

// recoverFeedState rebuilds bookkeeping from a snapshotted feed
// record. Segments whose standalone records did not survive recovery
// (e.g. skipped as corrupt) are dropped from the feed — the daemon
// re-publishes a consistent feed on its next commit.
func recoverFeedState(feed *videodb.ClipRecord, have func(name string) bool) (*feedState, error) {
	raw, ok := feed.Meta[StateKey]
	if !ok {
		return nil, fmt.Errorf("ingestd: feed record %q carries no %s", feed.Name, StateKey)
	}
	var fj feedJSON
	if err := json.Unmarshal([]byte(raw), &fj); err != nil {
		return nil, fmt.Errorf("ingestd: decode feed state: %w", err)
	}
	f := &feedState{
		feedName:  feed.Name,
		modelName: feed.ModelName,
		fps:       feed.FPS,
		window:    feed.Window,
		nextSeq:   fj.NextSeq,
		nextVS:    fj.NextVS,
		frameBase: fj.FrameBase,
	}
	for _, sm := range fj.Segments {
		if have(sm.Name) {
			f.segs = append(f.segs, sm)
		}
	}
	return f, nil
}
