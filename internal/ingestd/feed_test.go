package ingestd

import (
	"fmt"
	"math/rand"
	"testing"

	"milvideo/internal/sim"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// synthSeg builds a standalone segment record with nVS locally
// numbered windows of random dim-dimensional instances.
func synthSeg(rng *rand.Rand, name string, nVS, dim int) *videodb.ClipRecord {
	vss := make([]window.VS, nVS)
	for i := range vss {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		for tid := 0; tid < 1+rng.Intn(3); tid++ {
			vec := make([]float64, dim)
			for d := range vec {
				vec[d] = rng.NormFloat64()
			}
			vs.TSs = append(vs.TSs, window.TS{TrackID: tid, Vectors: [][]float64{vec}})
		}
		vss[i] = vs
	}
	return &videodb.ClipRecord{
		Name:      name,
		Frames:    nVS*15 + 5,
		FPS:       25,
		ModelName: "accident",
		Window:    window.Config{SampleRate: 5, WindowSize: 3},
		VSs:       vss,
		Incidents: []sim.Incident{{Type: sim.WallCrash, Start: 2, End: 9, Vehicles: []int{0}}},
		Meta:      map[string]string{"source": "synth"},
	}
}

// lookupMap adapts a record map to feedState's lookup signature.
func lookupMap(recs map[string]*videodb.ClipRecord) func(string) (*videodb.ClipRecord, error) {
	return func(name string) (*videodb.ClipRecord, error) {
		rec, ok := recs[name]
		if !ok {
			return nil, fmt.Errorf("no record %q", name)
		}
		return rec, nil
	}
}

// TestFeedStateOffsets pins the monotonic numbering: appended
// segments take disjoint, ever-increasing frame and VS-index ranges,
// and eviction never reclaims them.
func TestFeedStateOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := newFeedState("live")
	f.modelName, f.fps = "accident", 25
	f.window = window.Config{SampleRate: 5, WindowSize: 3}
	recs := map[string]*videodb.ClipRecord{}

	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("live-seg-%06d", i)
		rec := synthSeg(rng, name, 2+i%3, 4)
		recs[name] = rec
		sm := f.append(name, uint64(i), rec.Frames, len(rec.VSs))
		if sm.VSBase != f.nextVS-len(rec.VSs) || sm.FrameBase != f.frameBase-rec.Frames {
			t.Fatalf("segment %d offsets %+v inconsistent with high-water marks", i, sm)
		}
	}
	if f.nextSeq != 5 {
		t.Fatalf("nextSeq %d after 5 appends", f.nextSeq)
	}

	vss, err := f.buildVSs(lookupMap(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(vss) != f.liveVSs() {
		t.Fatalf("built %d VSs, bookkeeping says %d", len(vss), f.liveVSs())
	}
	for i := 1; i < len(vss); i++ {
		if vss[i].Index <= vss[i-1].Index {
			t.Fatalf("VS indices not strictly increasing at %d: %d then %d", i, vss[i-1].Index, vss[i].Index)
		}
		if vss[i].StartFrame < vss[i-1].StartFrame {
			t.Fatalf("frame offsets regress at %d", i)
		}
	}

	// Evict two; the survivors keep their indices and the feed record
	// still validates against the full (never-shrinking) frame span.
	beforeVS, beforeFrames := f.nextVS, f.frameBase
	for i := 0; i < 2; i++ {
		sm, ok := f.evictOldest()
		if !ok {
			t.Fatal("evictOldest on non-empty feed failed")
		}
		delete(recs, sm.Name)
	}
	if f.nextVS != beforeVS || f.frameBase != beforeFrames {
		t.Fatal("eviction reclaimed offsets")
	}
	rec, err := f.buildRecord(lookupMap(recs))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if rec.Frames != beforeFrames {
		t.Fatalf("feed frames %d, want cumulative %d", rec.Frames, beforeFrames)
	}
	if len(rec.Incidents) != 3 {
		t.Fatalf("feed carries %d incidents, want 3 surviving", len(rec.Incidents))
	}
	for _, inc := range rec.Incidents {
		if inc.End >= rec.Frames || inc.Start < f.segs[0].FrameBase {
			t.Fatalf("incident %v outside surviving feed span", inc)
		}
	}
}

// TestFeedStateRecoverRoundTrip: bookkeeping survives the
// record → StateKey → recoverFeedState round trip, and segments whose
// records were lost are dropped.
func TestFeedStateRecoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := newFeedState("live")
	f.modelName, f.fps = "accident", 25
	f.window = window.Config{SampleRate: 5, WindowSize: 3}
	recs := map[string]*videodb.ClipRecord{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("live-seg-%06d", i)
		rec := synthSeg(rng, name, 2, 4)
		recs[name] = rec
		f.append(name, uint64(i), rec.Frames, len(rec.VSs))
	}
	f.evictOldest()
	delete(recs, "live-seg-000000")

	feedRec, err := f.buildRecord(lookupMap(recs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := recoverFeedState(feedRec, func(name string) bool {
		_, ok := recs[name]
		return ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.nextSeq != f.nextSeq || got.nextVS != f.nextVS || got.frameBase != f.frameBase {
		t.Fatalf("recovered marks %d/%d/%d, want %d/%d/%d",
			got.nextSeq, got.nextVS, got.frameBase, f.nextSeq, f.nextVS, f.frameBase)
	}
	if len(got.segs) != len(f.segs) {
		t.Fatalf("recovered %d segments, want %d", len(got.segs), len(f.segs))
	}
	for i := range got.segs {
		if got.segs[i] != f.segs[i] {
			t.Fatalf("segment %d: %+v vs %+v", i, got.segs[i], f.segs[i])
		}
	}

	// A segment record lost to corruption drops out of the feed.
	partial, err := recoverFeedState(feedRec, func(name string) bool {
		return name != "live-seg-000002"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.segs) != len(f.segs)-1 {
		t.Fatalf("partial recovery kept %d segments, want %d", len(partial.segs), len(f.segs)-1)
	}
	for _, sm := range partial.segs {
		if sm.Name == "live-seg-000002" {
			t.Fatal("lost segment survived recovery")
		}
	}
	if partial.nextVS != f.nextVS {
		t.Fatal("partial recovery moved the VS high-water mark")
	}

	// A feed record without bookkeeping is an error, not a panic.
	bad := *feedRec
	bad.Meta = map[string]string{}
	if _, err := recoverFeedState(&bad, func(string) bool { return true }); err == nil {
		t.Fatal("recovery accepted a feed record without state")
	}
}

// TestFeedStateEmpty pins the edge cases: no segments means no
// record, and buildVSs mismatching bookkeeping is an error.
func TestFeedStateEmpty(t *testing.T) {
	f := newFeedState("live")
	if _, ok := f.evictOldest(); ok {
		t.Fatal("evicted from empty feed")
	}
	if _, err := f.buildRecord(lookupMap(nil)); err == nil {
		t.Fatal("built a record over zero segments")
	}

	rng := rand.New(rand.NewSource(3))
	rec := synthSeg(rng, "live-seg-000000", 2, 4)
	f.append(rec.Name, 0, rec.Frames, len(rec.VSs)+1) // bookkeeping lies
	_, err := f.buildVSs(lookupMap(map[string]*videodb.ClipRecord{rec.Name: rec}))
	if err == nil {
		t.Fatal("buildVSs accepted a VS-count mismatch")
	}
}
