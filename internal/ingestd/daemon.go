// Package ingestd is the always-on ingest daemon: it turns the batch
// pipeline-plus-snapshot system into a live service. A clip Source
// (simulated or directory-watched) feeds segments through a bounded
// admission queue into the streaming pipeline; committed segments
// land in the catalog as standalone records AND are merged into one
// growing "feed" clip whose windows are applied to the live candidate
// index as incremental deltas — newly ingested footage becomes
// queryable within a configurable staleness bound while query
// sessions keep running. A retention controller ages the oldest
// segments out (by count and/or TTL), tombstoning their windows from
// the index, and periodic checksummed snapshots bound the recovery
// window of a restarted daemon to one snapshot interval.
//
// # Determinism
//
// Everything that shapes the catalog is a pure function of the
// configuration: segment content comes from the seeded source,
// commit order is forced to source-sequence order by a reorder
// buffer (whatever the worker interleaving), fault decisions key on
// the sequence number, and count-based retention depends only on
// commit order. Two daemon runs with the same source and fault seed
// therefore produce byte-identical catalog snapshots — the chaos
// conformance suite replays a run to verify exactly that.
//
// # Feed numbering
//
// The feed clip's VS indices and frame offsets are assigned
// monotonically and never reused, even as old segments are evicted.
// That is the invariant that keeps incremental index maintenance
// (diff by VS.Index) and the MIL kernel caches (keyed by bag
// identity) sound against a mutating catalog.
package ingestd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"milvideo/internal/core"
	"milvideo/internal/faults"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// Applier receives the daemon's live index changes. The query
// service's index cache implements it: ApplyLive folds the feed
// clip's current windows into every live index entry for that clip
// (delta or rebuild-compaction, per the churn threshold), and
// DropClips discards cached entries for evicted clips. A nil Applier
// is valid — the daemon then only maintains the catalog.
type Applier interface {
	// ApplyLive applies the feed clip's new VS database at catalog
	// generation gen. It reports per-entry totals across the index
	// kinds it maintains.
	ApplyLive(clip string, vss []window.VS, gen uint64) (ApplyOutcome, error)
	// DropClips discards any cached index state for the named clips,
	// returning how many entries were dropped.
	DropClips(names []string) int
}

// ApplyOutcome aggregates what one ApplyLive call did across the
// applier's live index entries.
type ApplyOutcome struct {
	// Entries is how many live index entries absorbed the change.
	Entries int
	// Inserted and Deleted count instances applied as deltas.
	Inserted int
	Deleted  int
	// Rebuilds counts entries whose churn crossed the rebuild
	// threshold and compacted (rebuilt) instead of amending.
	Rebuilds int
}

// Config parameterizes the daemon.
type Config struct {
	// DB is the live catalog, shared with the query service.
	DB *videodb.DB
	// Source supplies clip segments.
	Source Source
	// Pipeline configures the per-segment processing pipeline. A nil
	// Pipeline.Model gets core.DefaultConfig's stage options (the
	// Window and Faults fields are preserved).
	Pipeline core.Config
	// FeedClip names the merged live clip ("live" if empty). Segment
	// records are named "<FeedClip>-seg-<seq>".
	FeedClip string
	// QueueDepth bounds the admission queue (0 means 4). A full queue
	// blocks the source — backpressure, counted — rather than
	// buffering without bound.
	QueueDepth int
	// Workers sizes the pipeline worker pool (0 means 2).
	Workers int
	// MaxStaleness is the queryable-staleness objective: the time from
	// a segment's arrival to its windows being live in the index.
	// Commits that exceed it are counted as violations (0 means 5s).
	MaxStaleness time.Duration
	// RetainSegments caps the surviving segment count; the oldest are
	// evicted past it (0 means 16; minimum 1).
	RetainSegments int
	// RetainTTL evicts segments older than this (0 disables TTL
	// retention). The newest segment always survives.
	RetainTTL time.Duration
	// CommitRetries bounds retry attempts after an injected transient
	// commit failure (0 means 2); RetryBackoff is the base delay
	// between attempts, doubling per attempt (0 means 1ms).
	CommitRetries int
	RetryBackoff  time.Duration
	// SnapshotPath, when set, enables periodic atomic catalog
	// snapshots and recovery: a daemon constructed over an existing
	// snapshot resumes its feed numbering from it. SnapshotEvery is
	// the snapshot interval (0 means 10s).
	SnapshotPath  string
	SnapshotEvery time.Duration
	// Faults injects deterministic failures into the admission,
	// commit and snapshot paths (nil or zero-rate is inert).
	Faults *faults.Injector
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// job is one admitted segment awaiting processing.
type job struct {
	seq     uint64
	scene   *sim.Scene
	arrival time.Time
}

// processed is one segment after the pipeline (or a tombstone for a
// shed/failed segment, keeping the commit sequence gapless).
type processed struct {
	seq       uint64
	skip      bool
	arrival   time.Time
	sceneName string
	frames    int
	fps       float64
	vss       []window.VS
	incidents []sim.Incident
	degraded  bool
}

// counters are the daemon's atomic lifecycle counters.
type counters struct {
	arrived          atomic.Uint64
	shed             atomic.Uint64
	backpressure     atomic.Uint64
	sourceErrors     atomic.Uint64
	processFailures  atomic.Uint64
	degradedSegments atomic.Uint64
	emptySegments    atomic.Uint64
	committed        atomic.Uint64
	commitRetries    atomic.Uint64
	commitsDropped   atomic.Uint64
	evictions        atomic.Uint64
	evictedSegments  atomic.Uint64
	indexApplies     atomic.Uint64
	indexInserted    atomic.Uint64
	indexDeleted     atomic.Uint64
	compactions      atomic.Uint64
	applyErrors      atomic.Uint64
	snapshots        atomic.Uint64
	snapshotFailures atomic.Uint64
	violations       atomic.Uint64
}

// Daemon is the always-on ingest subsystem. Construct with New,
// launch with Start, stop with Stop.
type Daemon struct {
	cfg     Config
	db      *videodb.DB
	inj     *faults.Injector
	applier Applier
	logf    func(string, ...any)

	mu          sync.Mutex // guards feed, recs, commitTimes, state
	feed        *feedState
	recs        map[string]*videodb.ClipRecord // surviving segment records
	commitTimes map[string]time.Time
	state       string

	stat      counters
	staleness *histogram
	snapSeq   atomic.Uint64

	started bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// New builds a daemon over cfg, recovering feed bookkeeping from
// cfg.SnapshotPath if a snapshot exists there (the catalog in cfg.DB
// is replaced by the snapshot's contents in that case).
func New(cfg Config) (*Daemon, error) {
	if cfg.DB == nil {
		return nil, errors.New("ingestd: Config.DB is required")
	}
	if cfg.Source == nil {
		return nil, errors.New("ingestd: Config.Source is required")
	}
	if cfg.FeedClip == "" {
		cfg.FeedClip = "live"
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 5 * time.Second
	}
	if cfg.RetainSegments <= 0 {
		cfg.RetainSegments = 16
	}
	if cfg.CommitRetries <= 0 {
		cfg.CommitRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10 * time.Second
	}
	if cfg.Pipeline.Model == nil {
		p := core.DefaultConfig()
		if cfg.Pipeline.Window != (window.Config{}) {
			p.Window = cfg.Pipeline.Window
		}
		p.Faults = cfg.Pipeline.Faults
		p.StageRetries = cfg.Pipeline.StageRetries
		p.RetryBackoff = cfg.Pipeline.RetryBackoff
		cfg.Pipeline = p
	}
	d := &Daemon{
		cfg:         cfg,
		db:          cfg.DB,
		inj:         cfg.Faults,
		logf:        cfg.Logf,
		recs:        make(map[string]*videodb.ClipRecord),
		commitTimes: make(map[string]time.Time),
		state:       "idle",
		staleness:   newHistogram(),
	}
	if d.logf == nil {
		d.logf = func(string, ...any) {}
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	if d.feed == nil {
		d.feed = newFeedState(cfg.FeedClip)
		d.feed.modelName = cfg.Pipeline.Model.Name()
		d.feed.window = cfg.Pipeline.Window
	}
	return d, nil
}

// recover loads the snapshot at SnapshotPath (if any) into the
// catalog and rebuilds feed bookkeeping from the feed record's
// persisted state. Segment records that did not survive recovery are
// dropped from the feed.
func (d *Daemon) recover() error {
	path := d.cfg.SnapshotPath
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ingestd: open snapshot: %w", err)
	}
	defer f.Close()
	rep, err := d.db.LoadRecovering(f)
	if err != nil {
		return fmt.Errorf("ingestd: recover snapshot %s: %w", path, err)
	}
	if !rep.Clean() {
		d.logf("ingestd: snapshot recovery: %s", rep)
	}
	feedRec, err := d.db.Clip(d.cfg.FeedClip)
	if errors.Is(err, videodb.ErrNotFound) {
		d.logf("ingestd: snapshot has no feed clip %q; starting fresh", d.cfg.FeedClip)
		return nil
	}
	if err != nil {
		return err
	}
	have := func(name string) bool {
		_, err := d.db.Clip(name)
		return err == nil
	}
	fs, err := recoverFeedState(feedRec, have)
	if err != nil {
		return err
	}
	now := time.Now()
	for _, sm := range fs.segs {
		rec, err := d.db.Clip(sm.Name)
		if err != nil {
			return err
		}
		d.recs[sm.Name] = rec
		d.commitTimes[sm.Name] = now
	}
	d.feed = fs
	d.logf("ingestd: recovered feed %q: %d segments, next seq %d, %d VSs",
		fs.feedName, len(fs.segs), fs.nextSeq, fs.liveVSs())
	return nil
}

// Start launches the daemon's goroutines: the admission loop, the
// pipeline worker pool, the committer and the snapshot ticker. ap may
// be nil. Start returns immediately; the pipeline runs until the
// source is exhausted or Stop is called.
func (d *Daemon) Start(ctx context.Context, ap Applier) error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("ingestd: already started")
	}
	d.started = true
	d.state = "running"
	d.mu.Unlock()

	d.applier = ap
	ctx, d.cancel = context.WithCancel(ctx)
	d.done = make(chan struct{})

	jobCh := make(chan job, d.cfg.QueueDepth)
	// The commit channel absorbs tombstones from the admission loop as
	// well as worker output, so it is sized to hold both without
	// coupling their progress.
	commitCh := make(chan processed, d.cfg.QueueDepth+d.cfg.Workers+1)

	var emitWG, workWG, commitWG sync.WaitGroup
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		d.emitLoop(ctx, jobCh, commitCh)
	}()
	for w := 0; w < d.cfg.Workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			d.worker(jobCh, commitCh)
		}()
	}
	commitWG.Add(1)
	go func() {
		defer commitWG.Done()
		d.committer(commitCh)
	}()

	var snapWG sync.WaitGroup
	snapCtx, snapCancel := context.WithCancel(context.Background())
	if d.cfg.SnapshotPath != "" {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			d.snapshotLoop(snapCtx)
		}()
	}

	go func() {
		emitWG.Wait()
		close(jobCh)
		workWG.Wait()
		close(commitCh)
		commitWG.Wait()
		snapCancel()
		snapWG.Wait()
		d.mu.Lock()
		if d.state == "running" {
			d.state = "drained"
		}
		d.mu.Unlock()
		close(d.done)
	}()
	return nil
}

// Wait blocks until the pipeline has drained — the source returned
// io.EOF or Stop cancelled admission — and every admitted segment has
// been committed or accounted for.
func (d *Daemon) Wait() {
	if d.done != nil {
		<-d.done
	}
}

// Stop halts admission, drains the segments already in flight,
// writes a final snapshot (when configured) and returns. Safe to call
// more than once.
func (d *Daemon) Stop() {
	if d.cancel != nil {
		d.cancel()
	}
	d.Wait()
	d.mu.Lock()
	already := d.state == "stopped"
	d.state = "stopped"
	d.mu.Unlock()
	if already {
		return
	}
	if d.cfg.SnapshotPath != "" {
		if err := d.db.SaveFile(d.cfg.SnapshotPath); err != nil {
			d.stat.snapshotFailures.Add(1)
			d.logf("ingestd: final snapshot: %v", err)
		} else {
			d.stat.snapshots.Add(1)
		}
	}
}

// emitLoop pulls segments from the source, assigns sequence numbers,
// applies admission-shedding faults and pushes into the bounded
// queue. Shed or failed arrivals still pass a tombstone to the
// committer so the commit sequence stays gapless.
func (d *Daemon) emitLoop(ctx context.Context, jobCh chan<- job, commitCh chan<- processed) {
	d.mu.Lock()
	seq := d.feed.nextSeq
	d.mu.Unlock()
	for {
		scene, err := d.cfg.Source.Next(ctx)
		if errors.Is(err, io.EOF) || ctx.Err() != nil {
			return
		}
		if err != nil {
			d.stat.sourceErrors.Add(1)
			d.logf("ingestd: source: %v", err)
			continue
		}
		s := seq
		seq++
		d.stat.arrived.Add(1)
		if d.inj.AdmitDropAt(s) {
			d.stat.shed.Add(1)
			commitCh <- processed{seq: s, skip: true}
			continue
		}
		j := job{seq: s, scene: scene, arrival: time.Now()}
		select {
		case jobCh <- j:
		default:
			d.stat.backpressure.Add(1)
			select {
			case jobCh <- j:
			case <-ctx.Done():
				commitCh <- processed{seq: s, skip: true}
				return
			}
		}
	}
}

// worker runs the streaming pipeline over admitted segments. Workers
// drain the queue completely even after Stop — in-flight footage is
// committed, not dropped.
func (d *Daemon) worker(jobCh <-chan job, commitCh chan<- processed) {
	for j := range jobCh {
		clip, err := core.ProcessSceneStream(j.scene, d.cfg.Pipeline)
		if err != nil {
			d.stat.processFailures.Add(1)
			d.logf("ingestd: process segment %d: %v", j.seq, err)
			commitCh <- processed{seq: j.seq, skip: true}
			continue
		}
		p := processed{
			seq:       j.seq,
			arrival:   j.arrival,
			sceneName: j.scene.Name,
			frames:    len(j.scene.Frames),
			fps:       j.scene.FPS,
			vss:       clip.VSs,
			incidents: j.scene.Incidents,
			degraded:  clip.Degraded.Any(),
		}
		clip.Video.Recycle()
		commitCh <- p
	}
}

// committer serializes commits into source-sequence order through a
// reorder buffer, making catalog content independent of worker
// interleaving.
func (d *Daemon) committer(commitCh <-chan processed) {
	d.mu.Lock()
	next := d.feed.nextSeq
	d.mu.Unlock()
	buf := make(map[uint64]processed)
	for p := range commitCh {
		buf[p.seq] = p
		for {
			q, ok := buf[next]
			if !ok {
				break
			}
			delete(buf, next)
			d.commitOne(q)
			next++
		}
	}
	// A cancelled admission can leave a gap (a segment that never got a
	// tombstone); flush whatever remains in sequence order.
	for len(buf) > 0 {
		lowest := uint64(0)
		first := true
		for s := range buf {
			if first || s < lowest {
				lowest, first = s, false
			}
		}
		q := buf[lowest]
		delete(buf, lowest)
		d.commitOne(q)
	}
}

// commitOne lands one in-order segment: catalog commit (segment
// record + feed Replace), retention eviction, live-index application
// and staleness accounting.
func (d *Daemon) commitOne(p processed) {
	if p.skip {
		return
	}
	if p.degraded {
		d.stat.degradedSegments.Add(1)
	}
	if len(p.vss) == 0 {
		d.stat.emptySegments.Add(1)
		return
	}

	// Injected transient commit failures with bounded deterministic
	// retry; a segment that exhausts its budget is dropped, counted,
	// and the feed stays consistent.
	for attempt := 0; ; attempt++ {
		err := d.inj.CommitFaultErr(p.seq, attempt)
		if err == nil {
			break
		}
		if attempt >= d.cfg.CommitRetries {
			d.stat.commitsDropped.Add(1)
			d.logf("ingestd: segment %d dropped after %d commit attempts: %v", p.seq, attempt+1, err)
			return
		}
		d.stat.commitRetries.Add(1)
		time.Sleep(d.cfg.RetryBackoff << attempt)
	}

	segName := fmt.Sprintf("%s-seg-%06d", d.cfg.FeedClip, p.seq)
	segRec := &videodb.ClipRecord{
		Name:      segName,
		Frames:    p.frames,
		FPS:       p.fps,
		ModelName: d.cfg.Pipeline.Model.Name(),
		Window:    d.cfg.Pipeline.Window,
		VSs:       p.vss,
		Incidents: p.incidents,
		Meta:      map[string]string{"source": "ingestd:" + p.sceneName},
	}

	d.mu.Lock()
	if d.feed.fps == 0 {
		d.feed.fps = p.fps
	}
	if err := d.db.Add(segRec); err != nil {
		d.mu.Unlock()
		d.stat.commitsDropped.Add(1)
		d.logf("ingestd: commit segment %d: %v", p.seq, err)
		return
	}
	d.feed.append(segName, p.seq, p.frames, len(p.vss))
	d.recs[segName] = segRec
	now := time.Now()
	d.commitTimes[segName] = now

	// Retention: count cap first, then TTL; the just-committed segment
	// always survives.
	var evicted []string
	for len(d.feed.segs) > d.cfg.RetainSegments {
		sm, _ := d.feed.evictOldest()
		evicted = append(evicted, sm.Name)
	}
	if ttl := d.cfg.RetainTTL; ttl > 0 {
		for len(d.feed.segs) > 1 {
			oldest := d.feed.segs[0]
			if now.Sub(d.commitTimes[oldest.Name]) <= ttl {
				break
			}
			d.feed.evictOldest()
			evicted = append(evicted, oldest.Name)
		}
	}

	lookup := func(name string) (*videodb.ClipRecord, error) {
		if rec, ok := d.recs[name]; ok {
			return rec, nil
		}
		return d.db.Clip(name)
	}
	feedRec, err := d.feed.buildRecord(lookup)
	if err != nil {
		// Unreachable by construction; surface loudly rather than
		// diverge the feed from the segment records.
		d.mu.Unlock()
		d.logf("ingestd: feed rebuild: %v", err)
		return
	}
	if err := d.db.Replace(feedRec); err != nil {
		d.mu.Unlock()
		d.logf("ingestd: publish feed: %v", err)
		return
	}
	if len(evicted) > 0 {
		if err := d.db.RemoveBatch(evicted); err != nil {
			d.logf("ingestd: evict %v: %v", evicted, err)
		} else {
			d.stat.evictions.Add(1)
			d.stat.evictedSegments.Add(uint64(len(evicted)))
		}
		for _, name := range evicted {
			delete(d.recs, name)
			delete(d.commitTimes, name)
		}
	}
	gen := d.db.Generation()
	feedVSs := feedRec.VSs
	d.mu.Unlock()

	if d.applier != nil {
		if len(evicted) > 0 {
			d.applier.DropClips(evicted)
		}
		out, err := d.applier.ApplyLive(d.cfg.FeedClip, feedVSs, gen)
		if err != nil {
			d.stat.applyErrors.Add(1)
			d.logf("ingestd: apply segment %d: %v", p.seq, err)
		} else if out.Entries > 0 {
			d.stat.indexApplies.Add(uint64(out.Entries))
			d.stat.indexInserted.Add(uint64(out.Inserted))
			d.stat.indexDeleted.Add(uint64(out.Deleted))
			d.stat.compactions.Add(uint64(out.Rebuilds))
		}
	}

	staleness := time.Since(p.arrival)
	d.staleness.observe(staleness)
	if staleness > d.cfg.MaxStaleness {
		d.stat.violations.Add(1)
	}
	d.stat.committed.Add(1)
}

// snapshotLoop writes periodic atomic catalog snapshots, absorbing
// injected snapshot failures (the next tick retries).
func (d *Daemon) snapshotLoop(ctx context.Context) {
	t := time.NewTicker(d.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n := d.snapSeq.Add(1)
			if err := d.inj.SnapshotFaultErr(n); err != nil {
				d.stat.snapshotFailures.Add(1)
				d.logf("ingestd: snapshot %d: %v", n, err)
				continue
			}
			if err := d.db.SaveFile(d.cfg.SnapshotPath); err != nil {
				d.stat.snapshotFailures.Add(1)
				d.logf("ingestd: snapshot %d: %v", n, err)
				continue
			}
			d.stat.snapshots.Add(1)
		}
	}
}

// FeedClip returns the name of the merged live clip.
func (d *Daemon) FeedClip() string { return d.cfg.FeedClip }

// MaxStaleness returns the configured staleness objective.
func (d *Daemon) MaxStaleness() time.Duration { return d.cfg.MaxStaleness }

// Stats assembles the daemon's lifecycle state.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	s := Stats{
		State:        d.state,
		FeedClip:     d.cfg.FeedClip,
		LiveSegments: len(d.feed.segs),
		LiveVSs:      d.feed.liveVSs(),
		FeedFrames:   d.feed.frameBase,
		NextSeq:      d.feed.nextSeq,
	}
	d.mu.Unlock()
	s.Arrived = d.stat.arrived.Load()
	s.Shed = d.stat.shed.Load()
	s.BackpressureWaits = d.stat.backpressure.Load()
	s.SourceErrors = d.stat.sourceErrors.Load()
	s.ProcessFailures = d.stat.processFailures.Load()
	s.DegradedSegments = d.stat.degradedSegments.Load()
	s.EmptySegments = d.stat.emptySegments.Load()
	s.Committed = d.stat.committed.Load()
	s.CommitRetries = d.stat.commitRetries.Load()
	s.CommitsDropped = d.stat.commitsDropped.Load()
	s.Evictions = d.stat.evictions.Load()
	s.EvictedSegments = d.stat.evictedSegments.Load()
	s.IndexApplies = d.stat.indexApplies.Load()
	s.IndexInserted = d.stat.indexInserted.Load()
	s.IndexDeleted = d.stat.indexDeleted.Load()
	s.Compactions = d.stat.compactions.Load()
	s.ApplyErrors = d.stat.applyErrors.Load()
	s.Snapshots = d.stat.snapshots.Load()
	s.SnapshotFailures = d.stat.snapshotFailures.Load()
	s.MaxStalenessMs = d.cfg.MaxStaleness.Milliseconds()
	s.StalenessViolations = d.stat.violations.Load()
	s.Staleness = d.staleness.summary()
	return s
}
