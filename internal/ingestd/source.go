package ingestd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"milvideo/internal/sim"
)

// Source supplies the daemon with clip segments. Next blocks until
// the next segment is available (honoring ctx cancellation) and
// returns io.EOF when the feed is exhausted — a finite feed drains
// the daemon's pipeline and lets it idle; an infinite feed runs until
// the daemon stops. Next is called from a single goroutine.
type Source interface {
	Next(ctx context.Context) (*sim.Scene, error)
}

// SimSource generates an endless stream of simulated tunnel segments:
// short clips with a deterministic, per-segment incident mix derived
// from Seed. Segment n is the same scene on every run, whatever the
// pacing — the chaos conformance suite leans on that to replay a
// daemon run byte for byte.
type SimSource struct {
	// Frames is the per-segment clip length (0 means 100).
	Frames int
	// Seed derives every segment's scenario seed.
	Seed int64
	// Interval paces segment delivery: Next waits until Interval has
	// elapsed since the previous segment (0 delivers flat out).
	Interval time.Duration
	// Limit caps the total segments delivered; 0 means unlimited.
	// After the limit, Next returns io.EOF.
	Limit int

	n    int
	last time.Time
}

// Next generates the next simulated segment.
func (s *SimSource) Next(ctx context.Context) (*sim.Scene, error) {
	if s.Limit > 0 && s.n >= s.Limit {
		return nil, io.EOF
	}
	if s.Interval > 0 && !s.last.IsZero() {
		wait := s.Interval - time.Since(s.last)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	frames := s.Frames
	if frames <= 0 {
		frames = 100
	}
	n := s.n
	s.n++
	s.last = time.Now()

	// Rotate the incident mix so consecutive segments differ (some
	// carry accidents, some only distractors, some are quiet) while
	// staying a pure function of (Seed, n).
	cfg := sim.TunnelConfig{
		Frames:     frames,
		Seed:       s.Seed + int64(n)*7919,
		SpawnEvery: 20,
		FPS:        25,
	}
	switch n % 4 {
	case 0:
		cfg.WallCrash, cfg.HardBrake = 1, 1
	case 1:
		cfg.SuddenStop, cfg.Speeding = 1, 1
	case 2:
		cfg.HardBrake = 2
	case 3:
		cfg.WallCrash, cfg.SuddenStop = 1, 1
	}
	scene, err := sim.Tunnel(cfg)
	if err != nil {
		return nil, fmt.Errorf("ingestd: simulate segment %d: %w", n, err)
	}
	scene.Name = fmt.Sprintf("sim-%06d", n)
	return scene, nil
}

// DirSource watches a directory for scene files (*.scene.json, a
// JSON-encoded sim.Scene) and delivers each exactly once, in
// lexicographic name order within a poll. Files present at startup
// are delivered first; new files are picked up within one poll
// interval. A file that fails to decode or validate is reported once
// and skipped thereafter.
type DirSource struct {
	// Dir is the watched directory.
	Dir string
	// Poll is the directory scan interval (0 means 500ms).
	Poll time.Duration

	seen  map[string]bool
	queue []string
}

// Next delivers the next unseen scene file, polling until one
// appears.
func (d *DirSource) Next(ctx context.Context) (*sim.Scene, error) {
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	poll := d.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		if len(d.queue) == 0 {
			if err := d.scan(); err != nil {
				return nil, err
			}
		}
		for len(d.queue) > 0 {
			path := d.queue[0]
			d.queue = d.queue[1:]
			scene, err := loadSceneFile(path)
			if err != nil {
				// Skip the bad file (it stays marked seen) and surface
				// the error once; the feed continues with the next file.
				return nil, err
			}
			return scene, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// scan enqueues unseen scene files in name order.
func (d *DirSource) scan() error {
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		return fmt.Errorf("ingestd: watch %s: %w", d.Dir, err)
	}
	var fresh []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".scene.json") {
			continue
		}
		path := filepath.Join(d.Dir, e.Name())
		if !d.seen[path] {
			d.seen[path] = true
			fresh = append(fresh, path)
		}
	}
	sort.Strings(fresh)
	d.queue = append(d.queue, fresh...)
	return nil
}

// loadSceneFile decodes and validates one JSON scene file.
func loadSceneFile(path string) (*sim.Scene, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ingestd: read %s: %w", path, err)
	}
	var scene sim.Scene
	if err := json.Unmarshal(blob, &scene); err != nil {
		return nil, fmt.Errorf("ingestd: decode %s: %w", path, err)
	}
	if scene.Name == "" {
		scene.Name = strings.TrimSuffix(filepath.Base(path), ".scene.json")
	}
	if err := scene.Validate(); err != nil {
		return nil, fmt.Errorf("ingestd: %s: %w", path, err)
	}
	return &scene, nil
}
