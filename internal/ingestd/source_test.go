package ingestd

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

// writeSceneFile marshals a small simulated scene into dir under
// name, returning the scene for comparison.
func writeSceneFile(t *testing.T, dir, name string, seed int64) *sim.Scene {
	t.Helper()
	scene, err := sim.Tunnel(sim.TunnelConfig{Frames: 30, Seed: seed, SpawnEvery: 20, FPS: 25})
	if err != nil {
		t.Fatal(err)
	}
	scene.Name = ""
	blob, err := json.Marshal(scene)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return scene
}

// TestDirSource pins the spool-directory contract: scene files are
// delivered exactly once in name order, a corrupt file surfaces one
// error and is skipped thereafter, non-scene files are ignored, and
// files that appear later are picked up within a poll.
func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	want := writeSceneFile(t, dir, "a.scene.json", 11)
	if err := os.WriteFile(filepath.Join(dir, "b.scene.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := &DirSource{Dir: dir, Poll: 5 * time.Millisecond}
	ctx := context.Background()
	got, err := src.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The name falls back to the file stem when the scene carries none.
	if got.Name != "a" {
		t.Fatalf("scene name %q, want %q", got.Name, "a")
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("decoded %d frames, want %d", len(got.Frames), len(want.Frames))
	}
	if _, err := src.Next(ctx); err == nil {
		t.Fatal("corrupt scene file delivered without error")
	}

	// The bad file stays seen; the next file to appear is delivered
	// on a later poll.
	late := make(chan *sim.Scene, 1)
	errc := make(chan error, 1)
	go func() {
		s, err := src.Next(ctx)
		if err != nil {
			errc <- err
			return
		}
		late <- s
	}()
	time.Sleep(15 * time.Millisecond)
	writeSceneFile(t, dir, "c.scene.json", 12)
	select {
	case s := <-late:
		if s.Name != "c" {
			t.Fatalf("late scene name %q, want %q", s.Name, "c")
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("late scene file never delivered")
	}

	// An exhausted spool blocks until cancellation.
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := src.Next(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("idle poll returned %v, want deadline", err)
	}

	// A vanished directory is a source error.
	gone := &DirSource{Dir: filepath.Join(dir, "missing")}
	if _, err := gone.Next(ctx); err == nil {
		t.Fatal("missing spool directory delivered a scene")
	}
}

// TestSimSourcePacing covers the paced-delivery branch: Interval
// spaces segments, Limit ends the feed with io.EOF, and cancellation
// interrupts the wait.
func TestSimSourcePacing(t *testing.T) {
	src := &SimSource{Frames: 10, Seed: 3, Interval: time.Millisecond, Limit: 2}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := src.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("two paced segments in %s, want >= interval", elapsed)
	}
	if _, err := src.Next(ctx); err != io.EOF {
		t.Fatalf("past the limit got %v, want io.EOF", err)
	}

	slow := &SimSource{Frames: 10, Seed: 3, Interval: time.Hour}
	if _, err := slow.Next(ctx); err != nil { // first segment is unpaced
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := slow.Next(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled wait returned %v, want deadline", err)
	}
}

// TestDaemonDirFeedAndPeriodicSnapshots drives the daemon from a
// spool directory and a short snapshot interval: both spool scenes
// commit, and at least one periodic (non-final) snapshot lands while
// the daemon is still running.
func TestDaemonDirFeedAndPeriodicSnapshots(t *testing.T) {
	spool := t.TempDir()
	writeSceneFile(t, spool, "s0.scene.json", 21)
	snap := filepath.Join(t.TempDir(), "catalog.db")
	db := videodb.New()
	d, err := New(Config{
		DB:            db,
		Source:        &DirSource{Dir: spool, Poll: 5 * time.Millisecond},
		SnapshotPath:  snap,
		SnapshotEvery: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.MaxStaleness(), 5*time.Second; got != want {
		t.Fatalf("default MaxStaleness %s, want %s", got, want)
	}
	if err := d.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for d.Stats().Committed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("spool scene never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	writeSceneFile(t, spool, "s1.scene.json", 22)
	for d.Stats().Committed < 2 || d.Stats().Snapshots < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("late spool scene or periodic snapshot missing: %+v", d.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("periodic snapshot not on disk: %v", err)
	}

	d.Stop()
	db2, err := videodb.LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Clip(d.FeedClip()); err != nil {
		t.Fatalf("snapshot lacks the feed clip: %v", err)
	}
}
