package track

import (
	"testing"

	"milvideo/internal/sim"
)

// TestFromSceneOracleTracks: the ground-truth converter yields one
// confirmed, contiguous track per simulated vehicle, with centroids
// and areas lifted straight from the simulator states.
func TestFromSceneOracleTracks(t *testing.T) {
	scene, err := sim.Tunnel(sim.TunnelConfig{Seed: 3, Frames: 200, SpawnEvery: 40, WallCrash: 1})
	if err != nil {
		t.Fatal(err)
	}
	tracks := FromScene(scene)
	if len(tracks) != scene.VehicleCount() {
		t.Fatalf("%d tracks for %d vehicles", len(tracks), scene.VehicleCount())
	}
	for i, tr := range tracks {
		if !tr.Confirmed {
			t.Fatalf("track %d unconfirmed", tr.ID)
		}
		if i > 0 && tracks[i-1].ID >= tr.ID {
			t.Fatalf("tracks not sorted by ID: %d then %d", tracks[i-1].ID, tr.ID)
		}
		for j, o := range tr.Observations {
			if o.Frame != tr.Start()+j {
				t.Fatalf("track %d observation %d at frame %d, want contiguous %d",
					tr.ID, j, o.Frame, tr.Start()+j)
			}
			if o.Predicted {
				t.Fatalf("track %d frame %d marked predicted — ground truth has no coasting", tr.ID, o.Frame)
			}
		}
	}
	// Spot-check one frame: every simulated vehicle state appears on
	// its track with the exact centroid.
	f := len(scene.Frames) / 2
	for _, v := range scene.Frames[f].Vehicles {
		var tr *Track
		for _, c := range tracks {
			if c.ID == v.ID {
				tr = c
				break
			}
		}
		if tr == nil {
			t.Fatalf("vehicle %d visible at frame %d has no track", v.ID, f)
		}
		o, ok := tr.At(f)
		if !ok {
			t.Fatalf("track %d missing frame %d", v.ID, f)
		}
		if o.Centroid != v.Pos {
			t.Fatalf("track %d frame %d centroid %v, want %v", v.ID, f, o.Centroid, v.Pos)
		}
		if o.Area != int(v.W*v.H) {
			t.Fatalf("track %d frame %d area %d, want %d", v.ID, f, o.Area, int(v.W*v.H))
		}
	}
}
