package track

import (
	"testing"

	"milvideo/internal/render"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
)

// TestVideoWorkersDeterminism: the per-frame segmentation pool must
// produce identical tracks for any worker count (association consumes
// results in frame order regardless of completion order).
func TestVideoWorkersDeterminism(t *testing.T) {
	scene, err := sim.Tunnel(sim.TunnelConfig{Frames: 120, Seed: 11, SpawnEvery: 50, WallCrash: 1, FPS: 25})
	if err != nil {
		t.Fatal(err)
	}
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []*Track {
		t.Helper()
		ex, err := segment.NewExtractor(clip, segment.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Workers = workers
		tracks, err := Video(ex, clip, opt)
		if err != nil {
			t.Fatal(err)
		}
		return tracks
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("no tracks from the test clip")
	}
	for _, w := range []int{2, 4} {
		par := run(w)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d tracks vs %d", w, len(par), len(serial))
		}
		for i := range serial {
			a, b := serial[i], par[i]
			if a.ID != b.ID || a.Len() != b.Len() || a.Start() != b.Start() || a.End() != b.End() {
				t.Fatalf("workers=%d: track %d differs: %d/%d obs, span %d-%d vs %d-%d",
					w, i, a.Len(), b.Len(), a.Start(), a.End(), b.Start(), b.End())
			}
			for j := range a.Observations {
				oa, ob := a.Observations[j], b.Observations[j]
				if oa.Frame != ob.Frame || oa.Centroid != ob.Centroid || oa.Predicted != ob.Predicted {
					t.Fatalf("workers=%d: track %d obs %d differs: %+v vs %+v", w, i, j, oa, ob)
				}
			}
		}
	}
}
