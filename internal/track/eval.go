package track

import (
	"fmt"
	"sort"

	"milvideo/internal/sim"
)

// Quality summarizes how well a set of tracks reproduces the
// simulator's ground-truth vehicles. It is not part of the paper's
// evaluation (the paper assumes tracking from its earlier system [20])
// but validates that our vision substrate is sound enough to feed the
// learning stages.
type Quality struct {
	// GroundTruthVehicles is the number of distinct simulated vehicles.
	GroundTruthVehicles int
	// Tracks is the number of confirmed tracks produced.
	Tracks int
	// MeanPositionError is the average distance (px) between matched
	// track observations and the true vehicle centroid.
	MeanPositionError float64
	// Coverage is the fraction of ground-truth (vehicle, frame) pairs
	// (with the vehicle fully inside the frame bounds) covered by a
	// matching track observation.
	Coverage float64
	// Purity is the fraction of track observations that lie within
	// the match radius of their assigned vehicle.
	Purity float64
}

// String implements fmt.Stringer.
func (q Quality) String() string {
	return fmt.Sprintf("gt=%d tracks=%d posErr=%.2fpx coverage=%.2f purity=%.2f",
		q.GroundTruthVehicles, q.Tracks, q.MeanPositionError, q.Coverage, q.Purity)
}

// Evaluate matches each track to the ground-truth vehicle that it
// follows most often (majority vote over frames, within matchRadius
// pixels) and computes the quality statistics.
func Evaluate(tracks []*Track, scene *sim.Scene, matchRadius float64) Quality {
	// Index ground truth: frame → vehicle states.
	type key struct{ frame, id int }
	gtPos := make(map[key]sim.VehicleState)
	gtVehicles := make(map[int]bool)
	visiblePairs := 0
	for _, fs := range scene.Frames {
		for _, v := range fs.Vehicles {
			gtPos[key{fs.Index, v.ID}] = v
			gtVehicles[v.ID] = true
			r := v.MBR()
			if r.Min.X >= 0 && r.Min.Y >= 0 && r.Max.X <= float64(scene.W) && r.Max.Y <= float64(scene.H) {
				visiblePairs++
			}
		}
	}

	covered := make(map[key]bool)
	totalObs, pureObs := 0, 0
	sumErr, nErr := 0.0, 0

	for _, t := range tracks {
		// Majority vote: which vehicle does this track follow?
		votes := make(map[int]int)
		for _, o := range t.Observations {
			if o.Predicted {
				continue
			}
			bestID, bestD := -1, matchRadius
			for _, v := range scene.Frames[o.Frame].Vehicles {
				if d := o.Centroid.Dist(v.Pos); d <= bestD {
					bestID, bestD = v.ID, d
				}
			}
			if bestID >= 0 {
				votes[bestID]++
			}
		}
		ids := make([]int, 0, len(votes))
		for id := range votes {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		match, best := -1, 0
		for _, id := range ids {
			if votes[id] > best {
				match, best = id, votes[id]
			}
		}
		for _, o := range t.Observations {
			if o.Predicted {
				continue
			}
			totalObs++
			if match < 0 {
				continue
			}
			if v, ok := gtPos[key{o.Frame, match}]; ok {
				d := o.Centroid.Dist(v.Pos)
				if d <= matchRadius {
					pureObs++
					covered[key{o.Frame, match}] = true
					sumErr += d
					nErr++
				}
			}
		}
	}

	q := Quality{
		GroundTruthVehicles: len(gtVehicles),
		Tracks:              len(tracks),
	}
	if nErr > 0 {
		q.MeanPositionError = sumErr / float64(nErr)
	}
	if visiblePairs > 0 {
		// Count covered pairs among fully visible ones.
		n := 0
		for k := range covered {
			v := gtPos[k]
			r := v.MBR()
			if r.Min.X >= 0 && r.Min.Y >= 0 && r.Max.X <= float64(scene.W) && r.Max.Y <= float64(scene.H) {
				n++
			}
		}
		q.Coverage = float64(n) / float64(visiblePairs)
	}
	if totalObs > 0 {
		q.Purity = float64(pureObs) / float64(totalObs)
	}
	return q
}
