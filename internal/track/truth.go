package track

import (
	"sort"

	"milvideo/internal/geom"
	"milvideo/internal/sim"
)

// FromScene converts a simulated scene's ground-truth vehicle states
// into perfect tracks — one per vehicle, observations contiguous over
// the vehicle's visible span, centroids and MBRs taken straight from
// the simulator. It is the oracle tracker the retrieval benchmark
// feeds through the trajectory-modeling stage when it wants to
// measure retrieval quality in isolation from vision-stage noise
// (the hard tier runs the real pipeline instead). Tracks are returned
// sorted by vehicle ID, all confirmed.
//
// Vehicles are visible in every frame the simulator reports them
// (sim actors despawn rather than coast), so each vehicle's frame run
// is contiguous and the Track.At contiguity invariant holds.
func FromScene(s *sim.Scene) []*Track {
	byID := make(map[int]*Track)
	for _, f := range s.Frames {
		for _, v := range f.Vehicles {
			t := byID[v.ID]
			if t == nil {
				t = &Track{ID: v.ID, Confirmed: true}
				byID[v.ID] = t
			}
			t.Observations = append(t.Observations, Observation{
				Frame:     f.Index,
				Centroid:  v.Pos,
				MBR:       geom.RectFromCenter(v.Pos, v.W, v.H),
				Area:      int(v.W * v.H),
				MeanShade: float64(v.Shade),
			})
		}
	}
	out := make([]*Track, 0, len(byID))
	for _, t := range byID {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
