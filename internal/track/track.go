// Package track implements frame-to-frame vehicle tracking (paper
// §3.1): detections from the segmentation stage are associated to
// existing tracks by solving a gated minimum-cost assignment
// (Hungarian algorithm over predicted-position distances), and each
// track accumulates the series of centroids that the trajectory
// modeling stage consumes.
//
// Track lifecycle: a new detection births a tentative track, which is
// confirmed after MinHits consecutive associations; a confirmed track
// that misses detections coasts on its constant-velocity prediction
// for up to MaxMissed frames before being terminated.
package track

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"milvideo/internal/assign"
	"milvideo/internal/frame"
	"milvideo/internal/geom"
	"milvideo/internal/segment"
)

// Observation is one per-frame sample of a track.
type Observation struct {
	Frame     int
	Centroid  geom.Point
	MBR       geom.Rect
	Area      int
	MeanShade float64
	// Predicted marks coasted samples (no matching detection; the
	// constant-velocity model filled the gap).
	Predicted bool
}

// Track is one tracked vehicle: an ID and its observation series.
type Track struct {
	ID           int
	Observations []Observation
	// Confirmed becomes true once the track has at least MinHits
	// real observations; tentative tracks that die early are dropped.
	Confirmed bool

	missed int
	dead   bool
	kf     *Kalman // non-nil when Options.UseKalman
}

// Start returns the first observed frame index.
func (t *Track) Start() int { return t.Observations[0].Frame }

// End returns the last observed frame index.
func (t *Track) End() int { return t.Observations[len(t.Observations)-1].Frame }

// Len returns the number of observations.
func (t *Track) Len() int { return len(t.Observations) }

// At returns the observation at frame f and whether the track covers
// that frame.
func (t *Track) At(f int) (Observation, bool) {
	if len(t.Observations) == 0 || f < t.Start() || f > t.End() {
		return Observation{}, false
	}
	// Observations are contiguous in frame index by construction.
	return t.Observations[f-t.Start()], true
}

// velocity estimates the current velocity from the last two
// observations (pixels per frame).
func (t *Track) velocity() geom.Vec {
	n := len(t.Observations)
	if n < 2 {
		return geom.V(0, 0)
	}
	a, b := t.Observations[n-2], t.Observations[n-1]
	df := b.Frame - a.Frame
	if df <= 0 {
		return geom.V(0, 0)
	}
	return b.Centroid.Sub(a.Centroid).Scale(1 / float64(df))
}

// predict returns the expected centroid at the next frame — from the
// Kalman filter when enabled, otherwise the constant-velocity
// two-point extrapolation.
func (t *Track) predict() geom.Point {
	if t.kf != nil && t.kf.Initialized() {
		return t.kf.Peek()
	}
	last := t.Observations[len(t.Observations)-1]
	return last.Centroid.Add(t.velocity())
}

// Options configures the tracker.
type Options struct {
	// MaxDist gates association: detections farther than this from a
	// track's predicted position can never match it.
	MaxDist float64
	// MaxMissed is how many consecutive frames a confirmed track may
	// coast before termination.
	MaxMissed int
	// MinHits is how many observations confirm a tentative track.
	MinHits int
	// Greedy switches the association solver from Hungarian to the
	// greedy approximation (ablation).
	Greedy bool
	// UseKalman replaces the two-point velocity extrapolation with a
	// constant-velocity Kalman filter per track (smoother predictions
	// through segmentation noise and occlusions).
	UseKalman bool
	// KalmanProcessNoise and KalmanMeasurementNoise tune the filter;
	// zero values take the defaults (0.5 px/frame², 1.5 px).
	KalmanProcessNoise, KalmanMeasurementNoise float64
	// Workers bounds the per-frame segmentation pool in Video; 0 sizes
	// it by GOMAXPROCS. The frame results are consumed in frame order
	// regardless, so the worker count never changes the output
	// (determinism tests pin it to compare pool sizes).
	Workers int
}

// DefaultOptions returns the association parameters used by the
// experiments, sized for vehicle speeds up to ~6 px/frame.
func DefaultOptions() Options {
	return Options{MaxDist: 18, MaxMissed: 4, MinHits: 3}
}

// Tracker maintains the track population across frames.
type Tracker struct {
	opt    Options
	live   []*Track
	closed []*Track
	nextID int
	frame  int
}

// NewTracker returns a tracker with the given options; zero-valued
// fields fall back to defaults.
func NewTracker(opt Options) *Tracker {
	d := DefaultOptions()
	if opt.MaxDist <= 0 {
		opt.MaxDist = d.MaxDist
	}
	if opt.MaxMissed <= 0 {
		opt.MaxMissed = d.MaxMissed
	}
	if opt.MinHits <= 0 {
		opt.MinHits = d.MinHits
	}
	return &Tracker{opt: opt}
}

// Update associates the detections of frame index f with the current
// tracks. Frames must be presented in strictly increasing order.
func (tr *Tracker) Update(f int, segs []segment.Segment) error {
	if len(tr.live) > 0 || len(tr.closed) > 0 || tr.frame > 0 {
		if f < tr.frame {
			return fmt.Errorf("track: frame %d after frame %d", f, tr.frame)
		}
	}
	tr.frame = f + 1

	// Cost matrix: predicted-position distance, gated by MaxDist.
	n, m := len(tr.live), len(segs)
	cost := make([][]float64, n)
	for i, t := range tr.live {
		cost[i] = make([]float64, m)
		pred := t.predict()
		for j := range segs {
			d := pred.Dist(segs[j].Centroid)
			if d > tr.opt.MaxDist {
				cost[i][j] = math.Inf(1)
			} else {
				cost[i][j] = d
			}
		}
	}
	solve := assign.Hungarian
	if tr.opt.Greedy {
		solve = assign.Greedy
	}
	var rowToCol []int
	if n > 0 && m > 0 {
		var err error
		rowToCol, _, err = solve(cost)
		if err != nil {
			return fmt.Errorf("track: association failed: %w", err)
		}
	} else {
		rowToCol = make([]int, n)
		for i := range rowToCol {
			rowToCol[i] = -1
		}
	}

	usedDet := make([]bool, m)
	var surviving []*Track
	for i, t := range tr.live {
		j := rowToCol[i]
		if j >= 0 {
			usedDet[j] = true
			if t.kf != nil {
				t.kf.Predict()
				t.kf.Update(segs[j].Centroid)
			}
			t.Observations = append(t.Observations, Observation{
				Frame:     f,
				Centroid:  segs[j].Centroid,
				MBR:       segs[j].MBR,
				Area:      segs[j].Area,
				MeanShade: segs[j].MeanShade,
			})
			t.missed = 0
			if !t.Confirmed {
				real := 0
				for _, o := range t.Observations {
					if !o.Predicted {
						real++
					}
				}
				if real >= tr.opt.MinHits {
					t.Confirmed = true
				}
			}
			surviving = append(surviving, t)
			continue
		}
		// No detection: coast or die.
		t.missed++
		if t.missed > tr.opt.MaxMissed || !t.Confirmed {
			tr.closeTrack(t)
			continue
		}
		var pred geom.Point
		if t.kf != nil {
			pred = t.kf.Predict() // advance the filter through the gap
		} else {
			pred = t.predict()
		}
		last := t.Observations[len(t.Observations)-1]
		t.Observations = append(t.Observations, Observation{
			Frame:     f,
			Centroid:  pred,
			MBR:       geom.RectFromCenter(pred, last.MBR.Width(), last.MBR.Height()),
			Area:      last.Area,
			MeanShade: last.MeanShade,
			Predicted: true,
		})
		surviving = append(surviving, t)
	}
	tr.live = surviving

	// Unmatched detections birth tentative tracks.
	for j, s := range segs {
		if usedDet[j] {
			continue
		}
		t := &Track{
			ID: tr.nextID,
			Observations: []Observation{{
				Frame:     f,
				Centroid:  s.Centroid,
				MBR:       s.MBR,
				Area:      s.Area,
				MeanShade: s.MeanShade,
			}},
		}
		if tr.opt.UseKalman {
			t.kf = NewKalman(tr.opt.KalmanProcessNoise, tr.opt.KalmanMeasurementNoise)
			t.kf.Init(s.Centroid)
		}
		if tr.opt.MinHits <= 1 {
			t.Confirmed = true
		}
		tr.nextID++
		tr.live = append(tr.live, t)
	}
	return nil
}

// closeTrack finalizes a track: trailing predicted observations are
// trimmed (they were never corroborated), and only confirmed tracks
// are kept.
func (tr *Tracker) closeTrack(t *Track) {
	for len(t.Observations) > 0 && t.Observations[len(t.Observations)-1].Predicted {
		t.Observations = t.Observations[:len(t.Observations)-1]
	}
	t.dead = true
	if t.Confirmed && len(t.Observations) > 0 {
		tr.closed = append(tr.closed, t)
	}
}

// Flush terminates all remaining live tracks (call after the last
// frame) and returns every confirmed track, ordered by ID.
func (tr *Tracker) Flush() []*Track {
	for _, t := range tr.live {
		tr.closeTrack(t)
	}
	tr.live = nil
	return tr.closed
}

// Live returns the currently active (not yet terminated) tracks.
func (tr *Tracker) Live() []*Track { return tr.live }

// ErrEmptyVideo is returned by Video for clips with no frames.
var ErrEmptyVideo = errors.New("track: empty video")

// Video runs segmentation and tracking over an entire clip and
// returns the confirmed tracks. Per-frame segmentation is independent
// work and runs on a bounded worker pool (sized by Options.Workers,
// default GOMAXPROCS, capped at the frame count); association is
// inherently sequential and consumes the results in frame order.
func Video(ex *segment.Extractor, v *frame.Video, opt Options) ([]*Track, error) {
	if v == nil || len(v.Frames) == 0 {
		return nil, ErrEmptyVideo
	}
	type result struct {
		segs []segment.Segment
		err  error
	}
	results := make([]result, len(v.Frames))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(v.Frames) {
		workers = len(v.Frames)
	}
	if ex.Adaptive() {
		workers = 1 // adaptive background is stateful: keep frame order
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				segs, err := ex.Segments(v.Frames[i])
				results[i] = result{segs: segs, err: err}
			}
		}()
	}
	for i := range v.Frames {
		next <- i
	}
	close(next)
	wg.Wait()

	tr := NewTracker(opt)
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("track: frame %d: %w", i, r.err)
		}
		if err := tr.Update(i, r.segs); err != nil {
			return nil, err
		}
	}
	return tr.Flush(), nil
}
