package track

import (
	"math"
	"testing"

	"milvideo/internal/geom"
	"milvideo/internal/render"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
)

// det builds a detection at (x, y).
func det(x, y float64) segment.Segment {
	return segment.Segment{
		Centroid: geom.Pt(x, y),
		MBR:      geom.RectFromCenter(geom.Pt(x, y), 10, 6),
		Area:     60,
	}
}

func TestSingleTargetTracking(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 3, MinHits: 2})
	for f := 0; f < 10; f++ {
		if err := tr.Update(f, []segment.Segment{det(float64(10+3*f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("got %d tracks", len(tracks))
	}
	tk := tracks[0]
	if !tk.Confirmed || tk.Len() != 10 {
		t.Fatalf("track: confirmed=%v len=%d", tk.Confirmed, tk.Len())
	}
	if tk.Start() != 0 || tk.End() != 9 {
		t.Fatalf("span: %d-%d", tk.Start(), tk.End())
	}
	if o, ok := tk.At(4); !ok || o.Centroid.X != 22 {
		t.Fatalf("At(4): %v %v", o, ok)
	}
	if _, ok := tk.At(99); ok {
		t.Fatal("At out of range must report false")
	}
}

func TestTwoTargetsCrossingAreKeptApart(t *testing.T) {
	// Two targets move toward each other on distinct rows; with
	// Hungarian association and velocity prediction they must retain
	// identity.
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 2, MinHits: 2})
	for f := 0; f < 20; f++ {
		a := det(float64(10+4*f), 20)
		b := det(float64(90-4*f), 32)
		if err := tr.Update(f, []segment.Segment{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks", len(tracks))
	}
	for _, tk := range tracks {
		first := tk.Observations[0].Centroid.Y
		for _, o := range tk.Observations {
			if o.Centroid.Y != first {
				t.Fatalf("track %d switched rows: %v", tk.ID, o)
			}
		}
	}
}

func TestCoastingThroughOcclusion(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 4, MinHits: 2})
	// Target visible, then occluded for 3 frames, then reappears where
	// the constant-velocity model predicts.
	for f := 0; f < 6; f++ {
		if err := tr.Update(f, []segment.Segment{det(float64(10+5*f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	for f := 6; f < 9; f++ {
		if err := tr.Update(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	for f := 9; f < 14; f++ {
		if err := tr.Update(f, []segment.Segment{det(float64(10+5*f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("occlusion split the track: %d tracks", len(tracks))
	}
	tk := tracks[0]
	if tk.Len() != 14 {
		t.Fatalf("length %d, want 14 (including coasted frames)", tk.Len())
	}
	// The coasted observations are marked predicted.
	pred := 0
	for _, o := range tk.Observations {
		if o.Predicted {
			pred++
		}
	}
	if pred != 3 {
		t.Fatalf("predicted observations: %d", pred)
	}
}

func TestTrackDiesAfterMaxMissed(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 2, MinHits: 2})
	for f := 0; f < 5; f++ {
		if err := tr.Update(f, []segment.Segment{det(float64(10+3*f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	for f := 5; f < 10; f++ {
		if err := tr.Update(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Live()) != 0 {
		t.Fatalf("track still live after %d misses", 5)
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("confirmed track lost: %d", len(tracks))
	}
	// Trailing predictions are trimmed: last observation is real.
	last := tracks[0].Observations[tracks[0].Len()-1]
	if last.Predicted || last.Frame != 4 {
		t.Fatalf("trailing predictions not trimmed: %+v", last)
	}
}

func TestTentativeTrackDroppedOnMiss(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 5, MinHits: 3})
	// Only two hits (below MinHits), then gone: must not be reported.
	if err := tr.Update(0, []segment.Segment{det(10, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(1, []segment.Segment{det(12, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(2, nil); err != nil {
		t.Fatal(err)
	}
	if tracks := tr.Flush(); len(tracks) != 0 {
		t.Fatalf("tentative track reported: %d", len(tracks))
	}
}

func TestNewDetectionsBirthTracks(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 10, MaxMissed: 2, MinHits: 1})
	if err := tr.Update(0, []segment.Segment{det(10, 10), det(50, 50)}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Live()) != 2 {
		t.Fatalf("live: %d", len(tr.Live()))
	}
	// MinHits = 1 confirms immediately.
	for _, tk := range tr.Live() {
		if !tk.Confirmed {
			t.Fatal("MinHits=1 must confirm on birth")
		}
	}
}

func TestGatingPreventsWildJumps(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 8, MaxMissed: 1, MinHits: 1})
	if err := tr.Update(0, []segment.Segment{det(10, 10)}); err != nil {
		t.Fatal(err)
	}
	// A detection far outside the gate must start a new track, not
	// teleport the old one.
	if err := tr.Update(1, []segment.Segment{det(200, 200)}); err != nil {
		t.Fatal(err)
	}
	live := tr.Live()
	found := false
	for _, tk := range live {
		if tk.Observations[0].Centroid.X == 200 {
			found = true
			if tk.ID == 0 {
				t.Fatal("far detection reused the old track")
			}
		}
	}
	if !found {
		t.Fatal("far detection did not birth a track")
	}
}

func TestUpdateRejectsBackwardFrames(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	if err := tr.Update(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(3, nil); err == nil {
		t.Fatal("backward frame accepted")
	}
}

func TestGreedyOptionWorks(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 15, MaxMissed: 2, MinHits: 1, Greedy: true})
	for f := 0; f < 5; f++ {
		if err := tr.Update(f, []segment.Segment{det(float64(10+3*f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Flush()) != 1 {
		t.Fatal("greedy tracker lost the target")
	}
}

func TestVideoEndToEndOnSimulatedScene(t *testing.T) {
	scene, err := sim.Tunnel(sim.TunnelConfig{Frames: 260, Seed: 5, SpawnEvery: 70, WallCrash: 1, FPS: 25})
	if err != nil {
		t.Fatal(err)
	}
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := segment.NewExtractor(clip, segment.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := Video(ex, clip, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) == 0 {
		t.Fatal("no tracks from the simulated clip")
	}
	q := Evaluate(tracks, scene, 12)
	if q.Purity < 0.85 {
		t.Fatalf("purity %.2f too low (%v)", q.Purity, q)
	}
	if q.Coverage < 0.5 {
		t.Fatalf("coverage %.2f too low (%v)", q.Coverage, q)
	}
	if q.MeanPositionError > 5 {
		t.Fatalf("position error %.2f too high (%v)", q.MeanPositionError, q)
	}
	if q.String() == "" {
		t.Fatal("empty String")
	}
}

func TestVideoErrors(t *testing.T) {
	if _, err := Video(nil, nil, DefaultOptions()); err == nil {
		t.Fatal("nil video accepted")
	}
}

func TestVelocityEstimate(t *testing.T) {
	tk := &Track{Observations: []Observation{
		{Frame: 0, Centroid: geom.Pt(0, 0)},
		{Frame: 2, Centroid: geom.Pt(6, 2)},
	}}
	v := tk.velocity()
	if math.Abs(v.X-3) > 1e-12 || math.Abs(v.Y-1) > 1e-12 {
		t.Fatalf("velocity %v", v)
	}
	one := &Track{Observations: []Observation{{Frame: 0, Centroid: geom.Pt(1, 1)}}}
	if one.velocity() != geom.V(0, 0) {
		t.Fatal("single-observation velocity must be zero")
	}
}
