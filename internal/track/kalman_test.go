package track

import (
	"math"
	"math/rand"
	"testing"

	"milvideo/internal/geom"
	"milvideo/internal/segment"
)

func TestKalmanConvergesOnConstantVelocity(t *testing.T) {
	kf := NewKalman(0.3, 1)
	kf.Init(geom.Pt(0, 0))
	// Feed noiseless constant-velocity measurements; the velocity
	// estimate must converge to the truth.
	for f := 1; f <= 30; f++ {
		kf.Predict()
		kf.Update(geom.Pt(3*float64(f), -1*float64(f)))
	}
	v := kf.Velocity()
	if math.Abs(v.X-3) > 0.05 || math.Abs(v.Y+1) > 0.05 {
		t.Fatalf("velocity: %v", v)
	}
	p := kf.Peek()
	if math.Abs(p.X-93) > 0.5 || math.Abs(p.Y+31) > 0.5 {
		t.Fatalf("peek: %v", p)
	}
	if !kf.Initialized() {
		t.Fatal("not initialized")
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	kf := NewKalman(0.2, 2)
	kf.Init(geom.Pt(0, 0))
	// Noisy measurements of x(t) = 2t; after convergence the state
	// error must be smaller than the raw measurement error on
	// average.
	sumKF, sumRaw := 0.0, 0.0
	n := 0
	for f := 1; f <= 200; f++ {
		truth := geom.Pt(2*float64(f), 0)
		z := geom.Pt(truth.X+rng.NormFloat64()*2, truth.Y+rng.NormFloat64()*2)
		kf.Predict()
		kf.Update(z)
		if f > 20 {
			sumKF += kf.Position().Dist(truth)
			sumRaw += z.Dist(truth)
			n++
		}
	}
	if sumKF >= sumRaw {
		t.Fatalf("filter no better than raw: %v vs %v", sumKF/float64(n), sumRaw/float64(n))
	}
}

func TestKalmanCoastsThroughGap(t *testing.T) {
	kf := NewKalman(0.3, 1)
	kf.Init(geom.Pt(0, 0))
	for f := 1; f <= 20; f++ {
		kf.Predict()
		kf.Update(geom.Pt(4*float64(f), 0))
	}
	// Five frames without measurements: prediction keeps moving at
	// the learned velocity.
	for f := 21; f <= 25; f++ {
		kf.Predict()
	}
	p := kf.Position()
	if math.Abs(p.X-100) > 2 {
		t.Fatalf("coasted position: %v", p)
	}
}

func TestKalmanDefaults(t *testing.T) {
	kf := NewKalman(0, 0)
	if kf.procNoise <= 0 || kf.measNoise <= 0 {
		t.Fatal("defaults not applied")
	}
	if kf.Initialized() {
		t.Fatal("fresh filter claims initialization")
	}
}

func TestTrackerWithKalmanTracksThroughNoise(t *testing.T) {
	// Noisy detections of two targets; the Kalman tracker must keep
	// both identities and its smoothed predictions must not break
	// gating.
	rng := rand.New(rand.NewSource(7))
	tr := NewTracker(Options{MaxDist: 12, MaxMissed: 3, MinHits: 2, UseKalman: true})
	for f := 0; f < 40; f++ {
		segs := []segment.Segment{
			det(10+3*float64(f)+rng.NormFloat64(), 20+rng.NormFloat64()),
			det(150-3*float64(f)+rng.NormFloat64(), 40+rng.NormFloat64()),
		}
		if err := tr.Update(f, segs); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks", len(tracks))
	}
	for _, tk := range tracks {
		if tk.Len() != 40 {
			t.Fatalf("track %d length %d", tk.ID, tk.Len())
		}
	}
}

func TestTrackerKalmanOcclusionGap(t *testing.T) {
	tr := NewTracker(Options{MaxDist: 14, MaxMissed: 5, MinHits: 2, UseKalman: true})
	for f := 0; f < 8; f++ {
		if err := tr.Update(f, []segment.Segment{det(10+4*float64(f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	for f := 8; f < 12; f++ {
		if err := tr.Update(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	for f := 12; f < 20; f++ {
		if err := tr.Update(f, []segment.Segment{det(10+4*float64(f), 20)}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Flush()
	if len(tracks) != 1 {
		t.Fatalf("occlusion split the Kalman track: %d", len(tracks))
	}
	if tracks[0].Len() != 20 {
		t.Fatalf("length: %d", tracks[0].Len())
	}
}

// det is declared in track_test.go.
