package track

import (
	"milvideo/internal/geom"
)

// Kalman is a constant-velocity Kalman filter over the state
// [x, y, vx, vy], the standard motion model for vehicle tracking. The
// tracker can use it in place of the two-point velocity estimate
// (Options.UseKalman): the filter smooths measurement noise from the
// segmentation stage and yields calibrated predictions through
// occlusions.
//
// The implementation exploits the block structure of the
// constant-velocity model: the x and y axes evolve independently, so
// the 4×4 filter decomposes into two identical 2×2 filters
// (position, velocity per axis), which keeps the arithmetic explicit
// and allocation-free.
type Kalman struct {
	// State per axis: position and velocity.
	x, y axisState
	// Process and measurement noise parameters.
	procNoise, measNoise float64
	initialized          bool
}

// axisState is a 1-D position/velocity filter with covariance
// [[p11, p12], [p12, p22]].
type axisState struct {
	pos, vel      float64
	p11, p12, p22 float64
}

// NewKalman returns a filter with the given noise magnitudes.
// procNoise is the standard deviation of the per-frame random
// acceleration (px/frame²); measNoise the standard deviation of the
// centroid measurement (px). Non-positive values take the defaults
// tuned for the segmentation stage (0.5, 1.5).
func NewKalman(procNoise, measNoise float64) *Kalman {
	if procNoise <= 0 {
		procNoise = 0.5
	}
	if measNoise <= 0 {
		measNoise = 1.5
	}
	return &Kalman{procNoise: procNoise, measNoise: measNoise}
}

// Init seeds the filter at a first measurement with zero velocity and
// wide velocity uncertainty.
func (k *Kalman) Init(p geom.Point) {
	r := k.measNoise * k.measNoise
	k.x = axisState{pos: p.X, p11: r, p22: 25}
	k.y = axisState{pos: p.Y, p11: r, p22: 25}
	k.initialized = true
}

// Initialized reports whether the filter has been seeded.
func (k *Kalman) Initialized() bool { return k.initialized }

// Predict advances the state one frame and returns the predicted
// position.
func (k *Kalman) Predict() geom.Point {
	k.x.predict(k.procNoise)
	k.y.predict(k.procNoise)
	return geom.Pt(k.x.pos, k.y.pos)
}

// Peek returns the position the filter would predict one frame ahead
// without mutating the state.
func (k *Kalman) Peek() geom.Point {
	return geom.Pt(k.x.pos+k.x.vel, k.y.pos+k.y.vel)
}

// Update fuses a measurement into the current (predicted) state.
func (k *Kalman) Update(p geom.Point) {
	r := k.measNoise * k.measNoise
	k.x.update(p.X, r)
	k.y.update(p.Y, r)
}

// Position returns the current state estimate.
func (k *Kalman) Position() geom.Point { return geom.Pt(k.x.pos, k.y.pos) }

// Velocity returns the current velocity estimate (px/frame).
func (k *Kalman) Velocity() geom.Vec { return geom.V(k.x.vel, k.y.vel) }

// predict: x ← F x, P ← F P Fᵀ + Q with F = [[1,1],[0,1]] and the
// white-acceleration Q = q²·[[¼,½],[½,1]].
func (a *axisState) predict(q float64) {
	a.pos += a.vel
	q2 := q * q
	p11 := a.p11 + 2*a.p12 + a.p22 + q2/4
	p12 := a.p12 + a.p22 + q2/2
	p22 := a.p22 + q2
	a.p11, a.p12, a.p22 = p11, p12, p22
}

// update: standard scalar-measurement Kalman update with H = [1, 0].
func (a *axisState) update(z, r float64) {
	s := a.p11 + r
	k1 := a.p11 / s
	k2 := a.p12 / s
	innov := z - a.pos
	a.pos += k1 * innov
	a.vel += k2 * innov
	// Joseph-free simple form: P ← (I − K H) P.
	p11 := (1 - k1) * a.p11
	p12 := (1 - k1) * a.p12
	p22 := a.p22 - k2*a.p12
	a.p11, a.p12, a.p22 = p11, p12, p22
}
