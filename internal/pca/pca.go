// Package pca implements Principal Component Analysis and the
// nearest-centroid classifier built on it, reproducing the paper's
// §3.1 final stage: classifying tracked vehicle segments into body
// classes (cars, SUVs, pick-up trucks) from their shape features,
// following the PCA-based framework of the paper's reference [13].
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"milvideo/internal/mat"
)

// ErrNoData is returned when fitting receives no samples.
var ErrNoData = errors.New("pca: no samples")

// PCA is a fitted principal-component model.
type PCA struct {
	mean       []float64
	components *mat.Matrix // dim × k, columns are principal directions
	eigvals    []float64   // descending variance along each component
	dim, k     int
}

// Fit computes the top-k principal components of the sample rows. All
// rows must share dimensionality d; k must satisfy 1 ≤ k ≤ d.
func Fit(rows [][]float64, k int) (*PCA, error) {
	if len(rows) == 0 {
		return nil, ErrNoData
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("pca: zero-dimensional samples")
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("pca: row %d has dimension %d, want %d", i, len(r), d)
		}
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d out of range [1,%d]", k, d)
	}

	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(rows))
	}
	// Covariance matrix (population normalization).
	cov := mat.New(d, d)
	for _, r := range rows {
		for a := 0; a < d; a++ {
			da := r[a] - mean[a]
			for b := a; b < d; b++ {
				db := r[b] - mean[b]
				cov.Set(a, b, cov.At(a, b)+da*db)
			}
		}
	}
	n := float64(len(rows))
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) / n
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	vals, vecs, err := mat.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition failed: %w", err)
	}
	comp := mat.New(d, k)
	for j := 0; j < k; j++ {
		for i := 0; i < d; i++ {
			comp.Set(i, j, vecs.At(i, j))
		}
	}
	return &PCA{mean: mean, components: comp, eigvals: vals[:k], dim: d, k: k}, nil
}

// Dim returns the input dimensionality.
func (p *PCA) Dim() int { return p.dim }

// Components returns the number of retained components.
func (p *PCA) Components() int { return p.k }

// ExplainedVariance returns the variance captured by each retained
// component, in descending order.
func (p *PCA) ExplainedVariance() []float64 {
	out := make([]float64, len(p.eigvals))
	copy(out, p.eigvals)
	return out
}

// Transform projects x into the principal subspace.
func (p *PCA) Transform(x []float64) ([]float64, error) {
	if len(x) != p.dim {
		return nil, fmt.Errorf("pca: input dimension %d, want %d", len(x), p.dim)
	}
	out := make([]float64, p.k)
	for j := 0; j < p.k; j++ {
		s := 0.0
		for i := 0; i < p.dim; i++ {
			s += (x[i] - p.mean[i]) * p.components.At(i, j)
		}
		out[j] = s
	}
	return out, nil
}

// Classifier is a nearest-centroid classifier operating in PCA space.
type Classifier struct {
	pca       *PCA
	centroids map[string][]float64
}

// Train fits the PCA on all samples and one centroid per label in the
// projected space. samples[i] belongs to class labels[i].
func Train(samples [][]float64, labels []string, k int) (*Classifier, error) {
	if len(samples) != len(labels) {
		return nil, fmt.Errorf("pca: %d samples vs %d labels", len(samples), len(labels))
	}
	p, err := Fit(samples, k)
	if err != nil {
		return nil, err
	}
	sums := make(map[string][]float64)
	counts := make(map[string]int)
	for i, s := range samples {
		z, err := p.Transform(s)
		if err != nil {
			return nil, err
		}
		acc, ok := sums[labels[i]]
		if !ok {
			acc = make([]float64, k)
			sums[labels[i]] = acc
		}
		for j, v := range z {
			acc[j] += v
		}
		counts[labels[i]]++
	}
	cents := make(map[string][]float64, len(sums))
	for l, acc := range sums {
		c := make([]float64, k)
		for j := range acc {
			c[j] = acc[j] / float64(counts[l])
		}
		cents[l] = c
	}
	return &Classifier{pca: p, centroids: cents}, nil
}

// Classes returns the known class labels in sorted order.
func (c *Classifier) Classes() []string {
	out := make([]string, 0, len(c.centroids))
	for l := range c.centroids {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Predict returns the label of the nearest class centroid in PCA
// space, together with the distance to it.
func (c *Classifier) Predict(x []float64) (string, float64, error) {
	z, err := c.pca.Transform(x)
	if err != nil {
		return "", 0, err
	}
	bestLabel, bestDist := "", math.Inf(1)
	for _, l := range c.Classes() {
		cent := c.centroids[l]
		d := 0.0
		for j := range cent {
			diff := z[j] - cent[j]
			d += diff * diff
		}
		if d < bestDist {
			bestLabel, bestDist = l, d
		}
	}
	return bestLabel, math.Sqrt(bestDist), nil
}
