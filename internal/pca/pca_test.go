package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Samples spread along (1,1)/√2 with tiny orthogonal noise: the
	// first component must align with (1,1).
	rng := rand.New(rand.NewSource(4))
	var rows [][]float64
	for i := 0; i < 200; i++ {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 0.1
		rows = append(rows, []float64{a + b, a - b})
	}
	p, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVariance()
	if ev[0] < 50 || ev[1] > 1 {
		t.Fatalf("explained variance: %v", ev)
	}
	// First component ≈ ±(1,1)/√2: project (1,1) and expect ≈ √2·10σ
	// scale relationship; simpler: transform of (1,1)-direction vector
	// has |z₁| large, |z₂| small.
	z, err := p.Transform([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]) < 5 || math.Abs(z[1]) > 0.5 {
		t.Fatalf("projection: %v", z)
	}
	if p.Dim() != 2 || p.Components() != 2 {
		t.Fatal("dims wrong")
	}
}

func TestTransformCentersData(t *testing.T) {
	rows := [][]float64{{10, 0}, {12, 0}, {14, 0}}
	p, err := Fit(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := p.Transform([]float64{12, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]) > 1e-9 {
		t.Fatalf("mean point should project to origin: %v", z)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Fit([][]float64{{}}, 1); err == nil {
		t.Fatal("zero-dim accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, 3); err == nil {
		t.Fatal("k > d accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	p, err := Fit([][]float64{{1, 2}, {3, 4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform([]float64{1}); err == nil {
		t.Fatal("bad dimension accepted")
	}
}

// vehicleish generates shape features (width, height, area, aspect)
// for three synthetic body classes.
func vehicleish(rng *rand.Rand, class string) []float64 {
	var w, h float64
	switch class {
	case "car":
		w, h = 16, 9
	case "suv":
		w, h = 22, 12
	default: // truck
		w, h = 30, 13
	}
	w += rng.NormFloat64() * 0.8
	h += rng.NormFloat64() * 0.5
	return []float64{w, h, w * h, w / h}
}

func TestClassifierSeparatesVehicleClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	classes := []string{"car", "suv", "truck"}
	var samples [][]float64
	var labels []string
	for i := 0; i < 240; i++ {
		c := classes[i%3]
		samples = append(samples, vehicleish(rng, c))
		labels = append(labels, c)
	}
	clf, err := Train(samples, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := clf.Classes(); len(got) != 3 || got[0] != "car" || got[1] != "suv" || got[2] != "truck" {
		t.Fatalf("classes: %v", got)
	}
	correct := 0
	total := 300
	for i := 0; i < total; i++ {
		c := classes[i%3]
		pred, dist, err := clf.Predict(vehicleish(rng, c))
		if err != nil {
			t.Fatal(err)
		}
		if dist < 0 {
			t.Fatal("negative distance")
		}
		if pred == c {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("classification accuracy %.2f too low", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train([][]float64{{1, 2}}, nil, 1); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Train(nil, nil, 1); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty: %v", err)
	}
	clf, err := Train([][]float64{{1, 2}, {5, 6}}, []string{"a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := clf.Predict([]float64{1}); err == nil {
		t.Fatal("bad dimension accepted")
	}
}

func TestExplainedVarianceIsCopy(t *testing.T) {
	p, err := Fit([][]float64{{1, 2}, {2, 4}, {3, 6}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVariance()
	ev[0] = -1
	if p.ExplainedVariance()[0] == -1 {
		t.Fatal("ExplainedVariance must return a copy")
	}
}
