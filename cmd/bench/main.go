// Command bench runs the pipeline-stage benchmarks programmatically
// and writes a machine-readable snapshot (BENCH_<n>.json in the repo
// root by default, picking the next free number) so performance can be
// tracked across commits without parsing `go test -bench` text output.
//
// Every stage is measured twice: serial (GOMAXPROCS=1) and parallel
// (GOMAXPROCS=max(2, NumCPU)), so snapshots record both the
// single-core cost and whatever overlap the host can actually deliver.
// On a single-core host the parallel numbers show the scheduling
// overhead of the concurrent paths, not a speedup — compare
// snapshot.num_cpu before reading them as scaling results.
//
// Usage:
//
//	go run ./cmd/bench            # writes BENCH_<n>.json
//	go run ./cmd/bench -o out.json
//	go run ./cmd/bench -stage background_histogram -o -   # one stage to stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"milvideo/internal/core"
	"milvideo/internal/experiments"
	"milvideo/internal/index"
	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/predicate"
	"milvideo/internal/query"
	"milvideo/internal/render"
	"milvideo/internal/retrieval"
	"milvideo/internal/segment"
	"milvideo/internal/server"
	"milvideo/internal/shard"
	"milvideo/internal/sim"
	"milvideo/internal/svm"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// Measurement is one benchmark run of a stage at a fixed GOMAXPROCS.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Result is one stage's serial and parallel measurements.
type Result struct {
	Name     string      `json:"name"`
	Serial   Measurement `json:"serial"`
	Parallel Measurement `json:"parallel"`
}

// Snapshot is the file format.
type Snapshot struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// ParallelProcs is the GOMAXPROCS the parallel measurements ran at.
	ParallelProcs int      `json:"parallel_procs"`
	Stages        []Result `json:"stages"`
	// CandidateCurves sweep recall@10 against session latency for the
	// candidate index at several pruning levels, catalog scales and
	// quantization modes (skipped under -stage).
	CandidateCurves []CandidateCurve `json:"candidate_curves,omitempty"`
	// Maintenance measures incremental index maintenance: the per-op
	// cost of absorbing a small catalog delta versus rebuilding.
	Maintenance []MaintenanceResult `json:"maintenance,omitempty"`
	// Sharded sweeps scatter–gather serving across shard counts on the
	// 1000× catalog: per-shard build cost, session latency, merge
	// overhead and recall at the fixed candidate budget.
	Sharded []ShardScalingResult `json:"sharded,omitempty"`
	// PredicateLeaves measures each predicate-language leaf (and the
	// temporal operators) in isolation: AST compile cost and per-bag
	// scoring cost over the 10× demo catalog.
	PredicateLeaves []PredicateLeafResult `json:"predicate_leaves,omitempty"`
	// PredicateSessions compares predicate-seeded against
	// example-seeded 5-round feedback sessions on scaled catalogs:
	// session latency side by side with recall@10 against the staged
	// ground truth (the BENCH_7 acceptance evidence).
	PredicateSessions []PredicateSessionResult `json:"predicate_sessions,omitempty"`
}

// PredicateLeafResult is one leaf's isolated cost: compiling its
// one-node AST and scoring the compiled scorer over the catalog.
type PredicateLeafResult struct {
	Leaf          string  `json:"leaf"`
	Expr          string  `json:"expr"`
	CompileNs     float64 `json:"compile_ns"`
	ScoreNsPerBag float64 `json:"score_ns_per_bag"`
}

// PredicateSessionResult is one seeded 5-round oracle session: round-0
// recall@10 is what the seed alone retrieves, final recall@10 is where
// MIL feedback leaves the session, and SessionSec prices the whole
// loop — comparable across the "predicate" and "example" seeds at the
// same scale.
type PredicateSessionResult struct {
	Scale        int     `json:"scale"`
	Bags         int     `json:"bags"`
	Seed         string  `json:"seed"`
	Query        string  `json:"query"`
	SessionSec   float64 `json:"session_sec"`
	Round0Recall float64 `json:"round0_recall_at_10"`
	FinalRecall  float64 `json:"final_recall_at_10"`
}

// CandidatePoint is one pruning level on a candidate curve: a full
// 5-round oracle session routed through the index with candidate-set
// size C, with recall@10 measured per round against the exact engine
// run on the same accumulated labels.
type CandidatePoint struct {
	C          int     `json:"c"`
	RecallMean float64 `json:"recall_at_10_mean"`
	RecallMin  float64 `json:"recall_at_10_min"`
	SessionSec float64 `json:"session_sec"`
	Speedup    float64 `json:"speedup_vs_exact"`
}

// MemoryReport accounts the probe structures' storage: the bytes the
// index actually holds per point (quantized codes or float64 rows)
// against the float64 baseline, normalized per VS so catalog scales
// compare directly.
type MemoryReport struct {
	Instances     int `json:"instances"`
	PointBytes    int `json:"point_bytes"`
	CodebookBytes int `json:"codebook_bytes"`
	FloatBytes    int `json:"float_bytes"`
	// BytesPerVS is (PointBytes + CodebookBytes) / bags;
	// FloatBytesPerVS is FloatBytes / bags.
	BytesPerVS      float64 `json:"bytes_per_vs"`
	FloatBytesPerVS float64 `json:"float_bytes_per_vs"`
	// Compression is FloatBytes / (PointBytes + CodebookBytes).
	Compression float64 `json:"compression_vs_float"`
}

// CandidateCurve is one (catalog scale, index kind, quantization)
// sweep.
type CandidateCurve struct {
	Scale int    `json:"scale"`
	Bags  int    `json:"bags"`
	Kind  string `json:"kind"`
	// Quant names the instance quantizer ("" = exact float probing).
	Quant         string           `json:"quant,omitempty"`
	BuildSec      float64          `json:"index_build_sec"`
	QuantTrainSec float64          `json:"quantizer_train_sec,omitempty"`
	ExactSec      float64          `json:"exact_session_sec"`
	Memory        MemoryReport     `json:"memory"`
	Points        []CandidatePoint `json:"points"`
}

// MaintenanceResult is one incremental-maintenance measurement: a
// built index absorbs small whole-bag deltas via Update and the mean
// delta cost is compared against a from-scratch rebuild.
type MaintenanceResult struct {
	Scale int    `json:"scale"`
	Bags  int    `json:"bags"`
	Kind  string `json:"kind"`
	// FullBuildSec is a fresh Build over the starting catalog;
	// DeltaApplyMeanSec is the mean Update cost across DeltaOps ops,
	// each removing one bag and adding one unseen bag.
	FullBuildSec      float64 `json:"full_build_sec"`
	DeltaApplyMeanSec float64 `json:"delta_apply_mean_sec"`
	DeltaOps          int     `json:"delta_ops"`
	// Applies and Rebuilds are the index's own maintenance counters
	// after the run: every delta must have applied incrementally.
	Applies    uint64 `json:"applies"`
	Rebuilds   uint64 `json:"rebuilds"`
	Tombstones int    `json:"tombstones"`
	// SpeedupVsRebuild is FullBuildSec / DeltaApplyMeanSec.
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`
}

// ShardScalingResult is one (quantization, shard count) point of the
// shard-scaling sweep: the full 5-round oracle session routed through
// the scatter–gather engine over S consistent-hash partitions at a
// fixed global candidate budget C, while the catalog churns under the
// session (see runShardedChurnSession). Session latency is the median
// of several runs and includes the per-round index maintenance —
// incremental applies and the organic rebuild waves the churn
// triggers — because on a serving node that maintenance stalls the
// very sessions being priced. Scatter, merge and maintenance time are
// each reported separately so the fan-out overhead and the
// maintenance share are visible next to the total. On one core the
// S>1 improvement is algorithmic, not parallelism: per-shard
// rebuild/maintenance units are S times smaller, and rebuilding S
// small indexes is cheaper than one big one (the build is O(n log n)
// distance evals and sorts, and small trees are cache-resident), so
// the rebuild waves shrink monotonically with S while the scatter's
// scout-and-carry bounds keep the probe side close to flat.
type ShardScalingResult struct {
	Scale int    `json:"scale"`
	Bags  int    `json:"bags"`
	Kind  string `json:"kind"`
	Quant string `json:"quant,omitempty"`
	// Shards is S; C is the global candidate budget per round.
	Shards int `json:"shards"`
	C      int `json:"c"`
	// ChurnBagsPerWindow is the rotating eviction window size: each
	// churn step evicts one window of unlabeled normal bags and
	// restores the previous one (a 2-window symmetric difference).
	ChurnBagsPerWindow int `json:"churn_bags_per_window"`
	// BuildSecPerShard is each partition index's initial build time,
	// in shard order — with parallel build capacity these overlap, so
	// max(.) rather than sum(.) approximates the cluster's build wall
	// time.
	BuildSecPerShard []float64 `json:"build_sec_per_shard"`
	SessionP50Sec    float64   `json:"session_p50_sec"`
	SessionMinSec    float64   `json:"session_min_sec"`
	// ScatterMsPerSession and MergeMsPerSession split one session's
	// scatter-phase time (probing all shards) from the gather merge;
	// MaintMsPerSession is the session's share of catalog
	// re-partitioning plus per-shard BagIndex.Update work, rebuild
	// waves included.
	ScatterMsPerSession float64 `json:"scatter_ms_per_session"`
	MergeMsPerSession   float64 `json:"merge_ms_per_session"`
	MaintMsPerSession   float64 `json:"maint_ms_per_session"`
	// AppliesPerSession and RebuildsPerSession are the summed
	// per-shard maintenance counters for one session: every session
	// must show the same cadence (the churn fraction per shard is
	// identical for every S, so rebuild waves land on the same rounds).
	AppliesPerSession  uint64  `json:"applies_per_session"`
	RebuildsPerSession uint64  `json:"rebuilds_per_session"`
	RecallMean         float64 `json:"recall_at_10_mean"`
	RecallMin          float64 `json:"recall_at_10_min"`
	ExactSec           float64 `json:"exact_session_sec"`
	SpeedupVsExact     float64 `json:"speedup_vs_exact"`
}

type stage struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<n>.json; '-' for stdout)")
	only := flag.String("stage", "", "run a single stage by name")
	maintOnly := flag.Bool("maint", false, "run only the incremental-maintenance benchmark (fast; used by the CI smoke)")
	shardedOnly := flag.Bool("sharded", false, "run only the shard-scaling benchmark (the sharded-serving acceptance evidence)")
	predOnly := flag.Bool("predicate", false, "run only the predicate-language benchmarks: the predicate_session_5rounds stage, per-leaf compile/score latency, and predicate-vs-example sessions (BENCH_7 evidence)")
	flag.Parse()

	if *predOnly {
		snap, err := predicateBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		writeSnapshot(*snap, *out)
		return
	}

	if *shardedOnly {
		sharded, err := shardScalingBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		writeSnapshot(Snapshot{
			Generated: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			NumCPU:    runtime.NumCPU(),
			Sharded:   sharded,
		}, *out)
		return
	}

	if *maintOnly {
		maint, err := maintenanceBench(10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		writeSnapshot(Snapshot{
			Generated:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Maintenance: maint,
		}, *out)
		return
	}

	stages, err := buildStages(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	parallelProcs := runtime.NumCPU()
	if parallelProcs < 2 {
		parallelProcs = 2
	}
	snap := Snapshot{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		ParallelProcs: parallelProcs,
	}
	prev := runtime.GOMAXPROCS(0)
	for _, s := range stages {
		if *only != "" && s.name != *only {
			continue
		}
		r := Result{
			Name:     s.name,
			Serial:   measure(s.fn, 1),
			Parallel: measure(s.fn, parallelProcs),
		}
		snap.Stages = append(snap.Stages, r)
		fmt.Fprintf(os.Stderr, "%-28s serial %14.0f ns/op %10d allocs/op | parallel %14.0f ns/op\n",
			s.name, r.Serial.NsPerOp, r.Serial.AllocsPerOp, r.Parallel.NsPerOp)
	}
	runtime.GOMAXPROCS(prev)
	if len(snap.Stages) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no stage matches %q\n", *only)
		os.Exit(1)
	}
	if *only == "" {
		curves, err := candidateCurves()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.CandidateCurves = curves
		maint, err := maintenanceBench(10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.Maintenance = maint
		sharded, err := shardScalingBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.Sharded = sharded
		leaves, sessions, err := predicateSweeps()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		snap.PredicateLeaves = leaves
		snap.PredicateSessions = sessions
	}
	writeSnapshot(snap, *out)
}

// writeSnapshot marshals the snapshot to path ('-' = stdout, "" =
// next free BENCH_<n>.json).
func writeSnapshot(snap Snapshot, path string) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if path == "" {
		path = nextBenchPath()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(path)
}

// measure runs one stage under testing.Benchmark at the given
// GOMAXPROCS.
func measure(fn func(b *testing.B), procs int) Measurement {
	prev := runtime.GOMAXPROCS(procs)
	r := testing.Benchmark(fn)
	runtime.GOMAXPROCS(prev)
	return Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// nextBenchPath returns BENCH_<n>.json for the smallest unused n ≥ 1.
func nextBenchPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// buildStages prepares shared fixtures and the stage list. Stage
// fixtures mirror the top-level go-test benchmarks (bench_test.go) so
// the two report comparable numbers. only narrows the run to one
// stage ("" runs all) so fixture warm-up can be skipped when unused.
func buildStages(only string) ([]stage, error) {
	scene, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 300, Seed: 9, SpawnEvery: 80, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		return nil, err
	}
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ex, err := segment.NewExtractor(clip, segment.DefaultOptions())
	if err != nil {
		return nil, err
	}
	midFrame := clip.Frames[len(clip.Frames)/2]
	cfg := core.DefaultConfig()

	// The batch-ingest fixture: eight short tunnel clips with distinct
	// seeds, ingested into a fresh catalog each op.
	batchJobs := make([]core.IngestJob, 8)
	for i := range batchJobs {
		s, err := sim.Tunnel(sim.TunnelConfig{
			Frames: 100, Seed: int64(i + 1), SpawnEvery: 80, WallCrash: 1, FPS: 25,
		})
		if err != nil {
			return nil, err
		}
		batchJobs[i] = core.IngestJob{Name: fmt.Sprintf("tunnel-%d", i+1), Scene: s}
	}

	svmX := gaussians(1, 60, 9)
	gramX := gaussians(4, 200, 9)
	db, labels := synthDB(2)

	// The query-service fixture: an in-process HTTP server over the
	// demo catalog, driven through a real TCP loopback client so the
	// stage measures the full network path (JSON, session store,
	// worker pool, SVM re-rank).
	demoDB, err := server.DemoDB(1)
	if err != nil {
		return nil, err
	}
	qsrv, err := server.New(server.Config{DB: demoDB})
	if err != nil {
		return nil, err
	}
	qclient := &server.Client{BaseURL: httptest.NewServer(qsrv.Handler()).URL}
	demoRec, err := demoDB.Clip(server.DemoClip)
	if err != nil {
		return nil, err
	}
	judge, err := server.JudgeFromRecord(demoRec, nil)
	if err != nil {
		return nil, err
	}
	penv, err := predicate.RecordEnv(demoRec)
	if err != nil {
		return nil, err
	}
	demoPred := server.DemoPredicates()[0]

	// The candidate-index fixture: the demo catalog at 10× (480 VSs),
	// its flattened instance set, prebuilt structures for the probe
	// stages, and a ground-truth oracle for the offline session stages.
	idxRec, err := server.ScaledDemoRecord(1, 10)
	if err != nil {
		return nil, err
	}
	idxDB := idxRec.VSs
	var idxPts [][]float64
	for _, vs := range idxDB {
		for _, ts := range vs.TSs {
			idxPts = append(idxPts, ts.Flat())
		}
	}
	vpt, err := index.BuildVPTree(idxPts, index.VPOptions{})
	if err != nil {
		return nil, err
	}
	ivf, err := index.BuildIVF(idxPts, index.IVFOptions{})
	if err != nil {
		return nil, err
	}
	idxQuery := idxDB[0].TSs[0].Flat() // an accident-spike instance
	idxBag, err := index.Build(idxDB, index.KindVPTree, index.Options{})
	if err != nil {
		return nil, err
	}
	idxOracle, err := core.OracleFromRecord(idxRec, nil)
	if err != nil {
		return nil, err
	}

	// Warm the process-wide clip cache so the figure stages measure
	// steady-state experiment cost, not the one-time clip construction
	// (render + segment + track dominates a cold run by ~4 orders of
	// magnitude). Skipped when -stage selects a non-figure stage.
	if only == "" || only == "figure8_warm" || only == "figure9_warm" {
		if err := experiments.WarmClips(); err != nil {
			return nil, err
		}
	}

	stages := []stage{
		{"background_histogram", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackground(clip.Frames, 1); return err })
		}},
		{"background_sort_ref", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackgroundRef(clip.Frames, 1); return err })
		}},
		{"segmentation_per_frame", func(b *testing.B) {
			benchErr(b, func() error { _, err := ex.Segments(midFrame); return err })
		}},
		{"ingest_sequential_clip", func(b *testing.B) {
			benchErr(b, func() error { _, err := core.ProcessVideoSequential(clip, cfg); return err })
		}},
		{"ingest_stream_clip", func(b *testing.B) {
			benchErr(b, func() error { _, err := core.ProcessVideoStream(clip, cfg); return err })
		}},
		{"ingest_batch_8clips", func(b *testing.B) {
			benchErr(b, func() error {
				results := core.IngestScenes(videodb.New(), batchJobs, core.IngestOptions{Config: cfg})
				for _, r := range results {
					if r.Err != nil {
						return r.Err
					}
				}
				return nil
			})
		}},
		{"kernel_gram_200x9", func(b *testing.B) {
			k := kernel.RBF{Sigma: 1}
			benchErr(b, func() error { _, err := kernel.Matrix(k, gramX); return err })
		}},
		{"ocsvm_train_60x9", func(b *testing.B) {
			benchErr(b, func() error {
				_, err := svm.TrainOneClass(svmX, svm.Options{Nu: 0.2, Kernel: kernel.RBF{Sigma: 1}})
				return err
			})
		}},
		{"mil_rank_200bags", func(b *testing.B) {
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions()}
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"mil_rank_200bags_cache_cold", func(b *testing.B) {
			// A fresh cache every op: first-feedback-round cost, where
			// every pair is a miss that must also be stored.
			benchErr(b, func() error {
				engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
				_, err := engine.Rank(db, labels)
				return err
			})
		}},
		{"mil_rank_200bags_cache_warm", func(b *testing.B) {
			// One shared cache, prewarmed before timing: the steady-state
			// cost of every feedback round after the first.
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
			if _, err := engine.Rank(db, labels); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"server_session_5rounds", func(b *testing.B) {
			// One full interactive session over HTTP per op: query,
			// four judged feedback re-ranks, delete.
			benchErr(b, func() error {
				ctx := context.Background()
				resp, err := qclient.Query(ctx, server.QueryRequest{Clip: server.DemoClip, TopK: 8})
				if err != nil {
					return err
				}
				for r := 1; r < 5; r++ {
					fb := make([]server.FeedbackLabel, len(resp.TopK))
					for i, e := range resp.TopK {
						fb[i] = server.FeedbackLabel{VS: e.VS, Relevant: judge(e)}
					}
					if resp, err = qclient.Feedback(ctx, resp.Session, fb); err != nil {
						return err
					}
				}
				return qclient.Delete(ctx, resp.Session)
			})
		}},
		{"index_build_vptree", func(b *testing.B) {
			benchErr(b, func() error { _, err := index.BuildVPTree(idxPts, index.VPOptions{}); return err })
		}},
		{"index_build_ivf", func(b *testing.B) {
			benchErr(b, func() error { _, err := index.BuildIVF(idxPts, index.IVFOptions{}); return err })
		}},
		{"vptree_knn", func(b *testing.B) {
			benchErr(b, func() error {
				if nn, _ := vpt.KNN(idxQuery, 16); len(nn) == 0 {
					return fmt.Errorf("empty knn result")
				}
				return nil
			})
		}},
		{"ivf_probe", func(b *testing.B) {
			nprobe := ivf.Clusters() / 4
			if nprobe < 2 {
				nprobe = 2
			}
			benchErr(b, func() error {
				if nn, _ := ivf.Search(idxQuery, 16, nprobe); len(nn) == 0 {
					return fmt.Errorf("empty probe result")
				}
				return nil
			})
		}},
		{"candidate_session_5rounds", func(b *testing.B) {
			// A full offline oracle session through the candidate index
			// (VP-tree, C = N/8) per op — the pruned interactive path.
			benchErr(b, func() error {
				_, _, err := runOracleSession(idxDB, idxOracle, idxBag, len(idxDB)/8, false)
				return err
			})
		}},
		{"exact_session_5rounds", func(b *testing.B) {
			// The same session with no index: the exact baseline the
			// candidate path is measured against.
			benchErr(b, func() error {
				_, _, err := runOracleSession(idxDB, idxOracle, nil, 0, false)
				return err
			})
		}},
		{"figure8_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure8(); return err })
		}},
		{"figure9_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure9(); return err })
		}},
	}
	return append(stages, predicateStageDefs(qclient, judge, penv, idxDB, demoPred)...), nil
}

// predicateStageDefs builds the predicate-language stages, shared by
// the full run and the fast -predicate mode: compiling the composed
// demo AST, scoring it over the 10× catalog, and the full HTTP session
// it seeds.
func predicateStageDefs(qclient *server.Client, judge server.Judge, env predicate.Env, scoreDB []window.VS, pred *predicate.Node) []stage {
	return []stage{
		{"predicate_compile", func(b *testing.B) {
			// Compiling the composed demo AST — seq(stop∧region,
			// go∧east∧region, 5s) — to its scorer tree.
			benchErr(b, func() error { _, err := predicate.Compile(pred, env); return err })
		}},
		{"predicate_score_10x", func(b *testing.B) {
			// Scoring the compiled composed predicate over the 10×
			// catalog (480 bags) per op.
			eng, err := predicate.Compile(pred, env)
			if err != nil {
				b.Fatal(err)
			}
			benchErr(b, func() error { _, err := eng.Scores(scoreDB); return err })
		}},
		{"predicate_session_5rounds", func(b *testing.B) {
			// The predicate twin of server_session_5rounds: one full
			// HTTP session seeded by the composed predicate, four
			// judged MIL feedback re-ranks, delete.
			benchErr(b, func() error {
				ctx := context.Background()
				resp, err := qclient.Query(ctx, server.QueryRequest{
					Clip: server.DemoClip, TopK: 8, Predicate: pred,
				})
				if err != nil {
					return err
				}
				for r := 1; r < 5; r++ {
					fb := make([]server.FeedbackLabel, len(resp.TopK))
					for i, e := range resp.TopK {
						fb[i] = server.FeedbackLabel{VS: e.VS, Relevant: judge(e)}
					}
					if resp, err = qclient.Feedback(ctx, resp.Session, fb); err != nil {
						return err
					}
				}
				return qclient.Delete(ctx, resp.Session)
			})
		}},
	}
}

// runOracleSession executes the paper's 5-round × top-20 feedback
// protocol offline, timing only the ranking calls. With bi == nil the
// session runs exact; otherwise it is routed through the candidate
// index with candidate-set size c. withRecall additionally runs the
// exact engine on the same accumulated labels every round (outside
// the timed path) and returns the per-round recall@10 against it.
func runOracleSession(db []window.VS, oracle retrieval.Oracle, bi *index.BagIndex, c int, withRecall bool) (time.Duration, []float64, error) {
	const rounds, topK = 5, 20
	var engine retrieval.Engine = retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
	var ref retrieval.Engine
	if bi != nil {
		engine = retrieval.CandidateEngine{Inner: engine, Index: bi, C: c}
		if withRecall {
			ref = retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
		}
	}
	labels := make(map[int]mil.Label)
	var elapsed time.Duration
	var recalls []float64
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		ranking, top, err := retrieval.RankRound(engine, db, labels, topK)
		elapsed += time.Since(t0)
		if err != nil {
			return 0, nil, fmt.Errorf("round %d: %w", r, err)
		}
		if ref != nil {
			want, _, err := retrieval.RankRound(ref, db, labels, topK)
			if err != nil {
				return 0, nil, fmt.Errorf("round %d (exact ref): %w", r, err)
			}
			recalls = append(recalls, recallAt10(ranking, want))
		}
		for _, pos := range top {
			if oracle.Relevant(db[pos]) {
				labels[db[pos].Index] = mil.Positive
			} else {
				labels[db[pos].Index] = mil.Negative
			}
		}
	}
	return elapsed, recalls, nil
}

// recallAt10 measures the overlap of the first 10 ranked positions.
func recallAt10(got, want []int) float64 {
	k := 10
	if len(want) < k {
		k = len(want)
	}
	set := make(map[int]bool, k)
	for _, p := range want[:k] {
		set[p] = true
	}
	hit := 0
	for _, p := range got[:k] {
		if set[p] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// predicateLeafBench measures every predicate leaf op — and the three
// temporal operators over stop/go operands — in isolation on the
// given catalog: one-node AST compile cost and compiled per-bag
// scoring cost.
func predicateLeafBench(db []window.VS, env predicate.Env) ([]PredicateLeafResult, error) {
	east := 0.0
	stop := func() *predicate.Node { return &predicate.Node{Op: predicate.OpStop} }
	goLeaf := func() *predicate.Node { return &predicate.Node{Op: predicate.OpGo} }
	leaves := []struct {
		name string
		node *predicate.Node
	}{
		{"direction", &predicate.Node{Op: predicate.OpDirection, Heading: &east}},
		{"speed", &predicate.Node{Op: predicate.OpSpeed, MinSpeed: 2, MaxSpeed: 8}},
		{"stop", stop()},
		{"go", goLeaf()},
		{"turn", &predicate.Node{Op: predicate.OpTurn}},
		{"class", &predicate.Node{Op: predicate.OpClass, Class: "car"}},
		{"size", &predicate.Node{Op: predicate.OpSize, MinArea: 40, MaxArea: 100}},
		{"region", &predicate.Node{Op: predicate.OpRegion, Rect: []float64{0.25, 0.25, 0.75, 0.75}}},
		{"sketch", &predicate.Node{Op: predicate.OpSketch, Points: [][2]float64{{10, 120}, {160, 120}, {310, 120}}}},
		{"seq", &predicate.Node{Op: predicate.OpSeq, A: stop(), B: goLeaf(), Within: 5}},
		{"during", &predicate.Node{Op: predicate.OpDuring, A: stop(), B: goLeaf()}},
		{"overlap", &predicate.Node{Op: predicate.OpOverlap, A: stop(), B: goLeaf()}},
	}
	out := make([]PredicateLeafResult, 0, len(leaves))
	for _, l := range leaves {
		eng, err := predicate.Compile(l.node, env)
		if err != nil {
			return nil, fmt.Errorf("leaf %s: %w", l.name, err)
		}
		comp := testing.Benchmark(func(b *testing.B) {
			benchErr(b, func() error { _, err := predicate.Compile(l.node, env); return err })
		})
		score := testing.Benchmark(func(b *testing.B) {
			benchErr(b, func() error { _, err := eng.Scores(db); return err })
		})
		r := PredicateLeafResult{
			Leaf:          l.name,
			Expr:          l.node.Summary(),
			CompileNs:     float64(comp.T.Nanoseconds()) / float64(comp.N),
			ScoreNsPerBag: float64(score.T.Nanoseconds()) / float64(score.N) / float64(len(db)),
		}
		fmt.Fprintf(os.Stderr, "predicate leaf %-9s compile %8.0f ns/op  score %9.1f ns/bag\n",
			l.name, r.CompileNs, r.ScoreNsPerBag)
		out = append(out, r)
	}
	return out, nil
}

// predicateSessionBench compares predicate-seeded against
// example-seeded 5-round oracle sessions on scaled catalogs: each seed
// engine runs round 0, then MIL takes over on positive feedback
// (query.WithFeedback — exactly the served path), with recall@10
// judged against the staged ground truth every round.
func predicateSessionBench() ([]PredicateSessionResult, error) {
	const rounds, topK = 5, 20
	var out []PredicateSessionResult
	for _, scale := range []int{10, 100} {
		rec, err := server.ScaledDemoRecord(1, scale)
		if err != nil {
			return nil, err
		}
		oracle, err := core.OracleFromRecord(rec, nil)
		if err != nil {
			return nil, err
		}
		env, err := predicate.RecordEnv(rec)
		if err != nil {
			return nil, err
		}
		db := rec.VSs
		relevant := 0
		for _, vs := range db {
			if oracle.Relevant(vs) {
				relevant++
			}
		}
		denom := relevant
		if denom > 10 {
			denom = 10
		}
		pe, err := predicate.Compile(server.DemoPredicates()[0], env)
		if err != nil {
			return nil, err
		}
		ex, err := query.ExampleFromVS(db[0])
		if err != nil {
			return nil, err
		}
		for _, seed := range []struct {
			name, q string
			initial retrieval.Engine
		}{
			{"predicate", pe.Node().Summary(), pe},
			{"example", "example(vs=0)", ex},
		} {
			engine := query.WithFeedback{
				Initial: seed.initial,
				Learner: retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()},
			}
			labels := make(map[int]mil.Label)
			var elapsed time.Duration
			var r0, rf float64
			for round := 0; round < rounds; round++ {
				t0 := time.Now()
				ranking, top, err := retrieval.RankRound(engine, db, labels, topK)
				elapsed += time.Since(t0)
				if err != nil {
					return nil, fmt.Errorf("%s session round %d: %w", seed.name, round, err)
				}
				hits := 0
				for _, pos := range ranking[:10] {
					if oracle.Relevant(db[pos]) {
						hits++
					}
				}
				recall := float64(hits) / float64(denom)
				if round == 0 {
					r0 = recall
				}
				rf = recall
				for _, pos := range top {
					if oracle.Relevant(db[pos]) {
						labels[db[pos].Index] = mil.Positive
					} else {
						labels[db[pos].Index] = mil.Negative
					}
				}
			}
			res := PredicateSessionResult{
				Scale: scale, Bags: len(db), Seed: seed.name, Query: seed.q,
				SessionSec: elapsed.Seconds(), Round0Recall: r0, FinalRecall: rf,
			}
			fmt.Fprintf(os.Stderr, "predicate session %4dx %-9s recall@10 round0 %.2f final %.2f  session %7.1fms\n",
				scale, seed.name, r0, rf, elapsed.Seconds()*1e3)
			out = append(out, res)
		}
	}
	return out, nil
}

// predicateSweeps runs both predicate evidence sweeps (the full-run
// tail and the -predicate mode body share it).
func predicateSweeps() ([]PredicateLeafResult, []PredicateSessionResult, error) {
	rec, err := server.ScaledDemoRecord(1, 10)
	if err != nil {
		return nil, nil, err
	}
	env, err := predicate.RecordEnv(rec)
	if err != nil {
		return nil, nil, err
	}
	leaves, err := predicateLeafBench(rec.VSs, env)
	if err != nil {
		return nil, nil, err
	}
	sessions, err := predicateSessionBench()
	if err != nil {
		return nil, nil, err
	}
	return leaves, sessions, nil
}

// predicateBench is the -predicate mode: the three predicate stages
// over a lightweight fixture (no render/segment warm-up) plus both
// sweeps — a self-contained BENCH_7 snapshot.
func predicateBench() (*Snapshot, error) {
	demoDB, err := server.DemoDB(1)
	if err != nil {
		return nil, err
	}
	qsrv, err := server.New(server.Config{DB: demoDB})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(qsrv.Handler())
	defer ts.Close()
	defer qsrv.Close()
	qclient := &server.Client{BaseURL: ts.URL}
	demoRec, err := demoDB.Clip(server.DemoClip)
	if err != nil {
		return nil, err
	}
	judge, err := server.JudgeFromRecord(demoRec, nil)
	if err != nil {
		return nil, err
	}
	penv, err := predicate.RecordEnv(demoRec)
	if err != nil {
		return nil, err
	}
	idxRec, err := server.ScaledDemoRecord(1, 10)
	if err != nil {
		return nil, err
	}

	parallelProcs := runtime.NumCPU()
	if parallelProcs < 2 {
		parallelProcs = 2
	}
	snap := &Snapshot{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		ParallelProcs: parallelProcs,
	}
	prev := runtime.GOMAXPROCS(0)
	for _, s := range predicateStageDefs(qclient, judge, penv, idxRec.VSs, server.DemoPredicates()[0]) {
		r := Result{
			Name:     s.name,
			Serial:   measure(s.fn, 1),
			Parallel: measure(s.fn, parallelProcs),
		}
		snap.Stages = append(snap.Stages, r)
		fmt.Fprintf(os.Stderr, "%-28s serial %14.0f ns/op %10d allocs/op | parallel %14.0f ns/op\n",
			s.name, r.Serial.NsPerOp, r.Serial.AllocsPerOp, r.Parallel.NsPerOp)
	}
	runtime.GOMAXPROCS(prev)
	leaves, sessions, err := predicateSweeps()
	if err != nil {
		return nil, err
	}
	snap.PredicateLeaves = leaves
	snap.PredicateSessions = sessions
	return snap, nil
}

// candidateCurves sweeps the candidate index across catalog scales
// (10×, 100×, 1000× the 48-VS demo catalog), index kinds,
// quantization modes and pruning levels: the BENCH_5 acceptance
// evidence that quantized probing with exact re-rank keeps recall@10
// ≥ 0.9 while running sessions multiples faster than exact ranking,
// in a fraction of the float64 probe storage.
func candidateCurves() ([]CandidateCurve, error) {
	var curves []CandidateCurve
	for _, scale := range []int{10, 100, 1000} {
		rec, err := server.ScaledDemoRecord(1, scale)
		if err != nil {
			return nil, err
		}
		oracle, err := core.OracleFromRecord(rec, nil)
		if err != nil {
			return nil, err
		}
		db := rec.VSs
		n := len(db)
		exactDur, _, err := runOracleSession(db, oracle, nil, 0, false)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "candidate %4dx (%d bags) exact session %7.1fms\n",
			scale, n, exactDur.Seconds()*1e3)
		quants := []index.QuantKind{index.QuantNone, index.QuantPQ}
		for _, kind := range index.Kinds() {
			for _, quant := range quants {
				t0 := time.Now()
				bi, err := index.Build(db, kind, index.Options{Quant: quant})
				if err != nil {
					return nil, err
				}
				mem := bi.Memory()
				curve := CandidateCurve{
					Scale: scale, Bags: n, Kind: string(kind), Quant: string(quant),
					BuildSec:      time.Since(t0).Seconds(),
					QuantTrainSec: bi.TrainTime().Seconds(),
					ExactSec:      exactDur.Seconds(),
					Memory: MemoryReport{
						Instances:       mem.Instances,
						PointBytes:      mem.PointBytes,
						CodebookBytes:   mem.CodebookBytes,
						FloatBytes:      mem.FloatBytes,
						BytesPerVS:      float64(mem.PointBytes+mem.CodebookBytes) / float64(n),
						FloatBytesPerVS: float64(mem.FloatBytes) / float64(n),
					},
				}
				if total := mem.PointBytes + mem.CodebookBytes; total > 0 {
					curve.Memory.Compression = float64(mem.FloatBytes) / float64(total)
				}
				for _, c := range []int{n / 32, n / 8, n / 4} {
					if c < 1 {
						continue
					}
					dur, recalls, err := runOracleSession(db, oracle, bi, c, true)
					if err != nil {
						return nil, err
					}
					pt := CandidatePoint{C: c, SessionSec: dur.Seconds(), RecallMin: 1}
					for _, r := range recalls {
						pt.RecallMean += r
						if r < pt.RecallMin {
							pt.RecallMin = r
						}
					}
					if len(recalls) > 0 {
						pt.RecallMean /= float64(len(recalls))
					}
					if dur > 0 {
						pt.Speedup = exactDur.Seconds() / dur.Seconds()
					}
					curve.Points = append(curve.Points, pt)
					qname := string(quant)
					if qname == "" {
						qname = "float"
					}
					fmt.Fprintf(os.Stderr, "candidate %4dx %-6s %-6s C=%-5d recall@10 %.2f (min %.2f)  session %7.1fms  speedup %5.2fx\n",
						scale, kind, qname, c, pt.RecallMean, pt.RecallMin, pt.SessionSec*1e3, pt.Speedup)
				}
				curves = append(curves, curve)
			}
		}
	}
	return curves, nil
}

// churnWindows builds the rotating eviction windows of the
// serving-under-churn protocol: disjoint, contiguous slices of the
// catalog's oracle-irrelevant bags. Before feedback round w+1, window
// w is evicted and window w-1 restored, so every churn step is a
// symmetric difference of up to two windows against a catalog that
// never loses a relevant bag — recall@10 against the per-round exact
// reference can therefore stay at 1.00 throughout. The window is a
// seventh of the catalog (capped by the irrelevant-bag supply), sized
// so cumulative instance churn crosses the 25% rebuild threshold on
// every churn step but the first (~14% of the instance baseline per
// window, so the first step applies incrementally and each two-window
// diff after it, ~29%, rebuilds): the measured latency includes three
// organic rebuild waves per session — the maintenance units the
// sharding exists to shrink — at a cadence the maintenance counters
// pin as identical for every shard count.
func churnWindows(db []window.VS, oracle retrieval.Oracle, steps int) [][]window.VS {
	var normals []window.VS
	for _, vs := range db {
		if !oracle.Relevant(vs) {
			normals = append(normals, vs)
		}
	}
	w := len(db) / 7
	if limit := len(normals) / steps; w > limit {
		w = limit
	}
	wins := make([][]window.VS, steps)
	for i := range wins {
		wins[i] = normals[i*w : (i+1)*w]
	}
	return wins
}

// evict returns base without the window's bags, preserving order.
func evict(base, win []window.VS) []window.VS {
	gone := make(map[int]bool, len(win))
	for _, vs := range win {
		gone[vs.Index] = true
	}
	out := make([]window.VS, 0, len(base)-len(win))
	for _, vs := range base {
		if !gone[vs.Index] {
			out = append(out, vs)
		}
	}
	return out
}

// shardedChurnRun is one sweep point's live serving state: the ring,
// the per-shard indexes (persistent across rounds — churn flows
// through BagIndex.Update, never a from-scratch build), the current
// partition they cover, and the churn schedule.
type shardedChurnRun struct {
	clip    string
	ring    *shard.Ring
	base    []window.VS
	windows [][]window.VS
	indexes []*index.BagIndex
	parts   []shard.Part
	c       int
	stats   *shard.Stats
}

// run executes the 5-round × top-20 oracle protocol through the
// scatter–gather engine while the catalog churns under the session:
// before every round after the first, one window of unlabeled normal
// bags leaves the catalog (its labels, if any, leave with it) and the
// previously evicted window returns, the ring partition is recomputed,
// and every shard absorbs its share of the diff through
// BagIndex.Update. Maintenance is timed inside the session total —
// a serving node's sessions absorb exactly these stalls — and also
// returned separately so the sweep can report its share. The churn
// fraction per shard equals the global fraction (the hash ring
// spreads every window uniformly), so rebuild waves land on the same
// rounds for every S and the comparison across shard counts stays
// fair. withRecall additionally ranks each round with an exact engine
// over the same mutated catalog and labels, outside the timed path.
func (r *shardedChurnRun) run(oracle retrieval.Oracle, withRecall bool) (total, maint time.Duration, recalls []float64, err error) {
	const rounds, topK = 5, 20
	probers := make([]shard.Prober, len(r.indexes))
	for i := range r.indexes {
		probers[i] = shard.LocalProber{VSs: r.parts[i].VSs, Index: r.indexes[i]}
	}
	engine := &shard.Engine{
		Inner:   retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()},
		Probers: probers,
		C:       r.c,
		Stats:   r.stats,
	}
	var ref retrieval.Engine
	if withRecall {
		ref = retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
	}
	labels := make(map[int]mil.Label)
	db := r.base
	for round := 0; round < rounds; round++ {
		t0 := time.Now()
		if round > 0 && round-1 < len(r.windows) {
			db = evict(r.base, r.windows[round-1])
			for _, vs := range r.windows[round-1] {
				delete(labels, vs.Index)
			}
			parts := shard.PartitionVS(r.ring, r.clip, db)
			for i := range r.indexes {
				if _, err := r.indexes[i].Update(parts[i].VSs); err != nil {
					return 0, 0, nil, fmt.Errorf("round %d shard %d update: %w", round, i, err)
				}
				probers[i] = shard.LocalProber{VSs: parts[i].VSs, Index: r.indexes[i]}
			}
			r.parts = parts
			maint += time.Since(t0)
		}
		ranking, top, rerr := retrieval.RankRound(engine, db, labels, topK)
		total += time.Since(t0)
		if rerr != nil {
			return 0, 0, nil, fmt.Errorf("round %d: %w", round, rerr)
		}
		if ref != nil {
			want, _, rerr := retrieval.RankRound(ref, db, labels, topK)
			if rerr != nil {
				return 0, 0, nil, fmt.Errorf("round %d (exact ref): %w", round, rerr)
			}
			recalls = append(recalls, recallAt10(ranking, want))
		}
		for _, pos := range top {
			if oracle.Relevant(db[pos]) {
				labels[db[pos].Index] = mil.Positive
			} else {
				labels[db[pos].Index] = mil.Negative
			}
		}
	}
	return total, maint, recalls, nil
}

// shardScalingBench sweeps scatter–gather serving over S ∈ {1,2,4,8}
// on the 1000× demo catalog (48,000 bags) at the fixed global budget
// C = 1500, for float and product-quantized probing, with the catalog
// churning under every session (runShardedChurnSession): the BENCH_6
// acceptance evidence that sharded serving cuts session latency
// monotonically from S=1 to S=4 while recall@10 holds at 1.00, with
// merge and maintenance overhead reported separately from the scatter
// time. Each rep rebuilds the sweep point's indexes from the base
// catalog (outside the timed path) so every rep replays an identical
// churn schedule.
func shardScalingBench() ([]ShardScalingResult, error) {
	// Seven reps: rebuild waves inside the timed sessions make single
	// runs allocation-heavy and GC-noisy, so the p50 needs more
	// samples than the probe-only sweeps did.
	const scale, c, reps = 1000, 1500, 7
	const churnSteps = 4 // one per feedback round after the first
	rec, err := server.ScaledDemoRecord(1, scale)
	if err != nil {
		return nil, err
	}
	oracle, err := core.OracleFromRecord(rec, nil)
	if err != nil {
		return nil, err
	}
	db := rec.VSs
	windows := churnWindows(db, oracle, churnSteps)
	exactDur, _, err := runOracleSession(db, oracle, nil, 0, false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "sharded %4dx (%d bags) exact session %7.1fms  churn window %d bags\n",
		scale, len(db), exactDur.Seconds()*1e3, len(windows[0]))

	var out []ShardScalingResult
	for _, quant := range []index.QuantKind{index.QuantNone, index.QuantPQ} {
		for _, s := range []int{1, 2, 4, 8} {
			ring := shard.NewRing(s)
			res := ShardScalingResult{
				Scale: scale, Bags: len(db), Kind: string(index.KindVPTree),
				Quant: string(quant), Shards: s, C: c,
				ChurnBagsPerWindow: len(windows[0]),
				ExactSec:           exactDur.Seconds(), RecallMin: 1,
			}
			stats := &shard.Stats{}
			durs := make([]time.Duration, 0, reps)
			maints := make([]time.Duration, 0, reps)
			for rep := 0; rep < reps; rep++ {
				// Level the collector between reps: the fresh builds and
				// the in-session rebuild waves allocate enough that GC
				// debt would otherwise leak across reps and smear the p50.
				runtime.GC()
				parts := shard.PartitionVS(ring, rec.Name, db)
				indexes := make([]*index.BagIndex, len(parts))
				for i, p := range parts {
					t0 := time.Now()
					bi, err := index.Build(p.VSs, index.KindVPTree, index.Options{Quant: quant})
					if err != nil {
						return nil, err
					}
					if rep == 0 {
						res.BuildSecPerShard = append(res.BuildSecPerShard, time.Since(t0).Seconds())
					}
					indexes[i] = bi
				}
				run := &shardedChurnRun{
					clip: rec.Name, ring: ring, base: db, windows: windows,
					indexes: indexes, parts: parts, c: c, stats: stats,
				}
				dur, maint, recalls, err := run.run(oracle, rep == 0)
				if err != nil {
					return nil, err
				}
				durs = append(durs, dur)
				maints = append(maints, maint)
				for _, r := range recalls {
					res.RecallMean += r
					if r < res.RecallMin {
						res.RecallMin = r
					}
				}
				if rep == 0 {
					if len(recalls) > 0 {
						res.RecallMean /= float64(len(recalls))
					}
					for _, bi := range indexes {
						m := bi.Maintenance()
						res.AppliesPerSession += m.Applies
						res.RebuildsPerSession += m.Rebuilds
					}
				}
			}
			sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
			sort.Slice(maints, func(a, b int) bool { return maints[a] < maints[b] })
			res.SessionP50Sec = durs[len(durs)/2].Seconds()
			res.SessionMinSec = durs[0].Seconds()
			res.ScatterMsPerSession = float64(stats.ScatterNs.Load()) / 1e6 / reps
			res.MergeMsPerSession = float64(stats.MergeNs.Load()) / 1e6 / reps
			res.MaintMsPerSession = maints[len(maints)/2].Seconds() * 1e3
			if res.SessionP50Sec > 0 {
				res.SpeedupVsExact = res.ExactSec / res.SessionP50Sec
			}
			qname := string(quant)
			if qname == "" {
				qname = "float"
			}
			fmt.Fprintf(os.Stderr,
				"sharded %4dx %-5s S=%d C=%-5d recall@10 %.2f (min %.2f)  session p50 %7.1fms  scatter %6.1fms  merge %5.2fms  maint %6.1fms (%d applies, %d rebuilds)  speedup %5.2fx\n",
				scale, qname, s, c, res.RecallMean, res.RecallMin,
				res.SessionP50Sec*1e3, res.ScatterMsPerSession, res.MergeMsPerSession,
				res.MaintMsPerSession, res.AppliesPerSession, res.RebuildsPerSession, res.SpeedupVsExact)
			out = append(out, res)
		}
	}
	return out, nil
}

// maintenanceBench measures incremental index maintenance at the
// given catalog scale: a built index absorbs 20 one-bag-out,
// one-bag-in deltas through Update, and the mean delta cost is set
// against a from-scratch rebuild. Every delta must take the
// incremental path (Applies == DeltaOps, Rebuilds == 0) — the CI
// smoke asserts exactly that on this output.
func maintenanceBench(scale int) ([]MaintenanceResult, error) {
	const deltaOps = 20
	rec, err := server.ScaledDemoRecord(1, scale)
	if err != nil {
		return nil, err
	}
	// Unseen bags to insert, with indices clear of the catalog's.
	extraRec, err := server.ScaledDemoRecord(2, 1)
	if err != nil {
		return nil, err
	}
	extra := extraRec.VSs
	for i := range extra {
		extra[i].Index = 1_000_000 + i
	}
	if len(extra) < deltaOps {
		return nil, fmt.Errorf("maintenance bench needs %d spare bags, have %d", deltaOps, len(extra))
	}

	var out []MaintenanceResult
	for _, kind := range index.Kinds() {
		t0 := time.Now()
		bi, err := index.Build(rec.VSs, kind, index.Options{})
		if err != nil {
			return nil, err
		}
		buildSec := time.Since(t0).Seconds()
		db := append([]window.VS(nil), rec.VSs...)
		var applyTotal time.Duration
		for op := 0; op < deltaOps; op++ {
			db = append(db[1:], extra[op])
			t0 := time.Now()
			res, err := bi.Update(db)
			if err != nil {
				return nil, err
			}
			applyTotal += time.Since(t0)
			if res.Rebuilt {
				return nil, fmt.Errorf("%s delta op %d fell back to a rebuild", kind, op)
			}
		}
		m := bi.Maintenance()
		r := MaintenanceResult{
			Scale: scale, Bags: len(rec.VSs), Kind: string(kind),
			FullBuildSec:      buildSec,
			DeltaApplyMeanSec: applyTotal.Seconds() / deltaOps,
			DeltaOps:          deltaOps,
			Applies:           m.Applies,
			Rebuilds:          m.Rebuilds,
			Tombstones:        m.Tombstones,
		}
		if r.DeltaApplyMeanSec > 0 {
			r.SpeedupVsRebuild = r.FullBuildSec / r.DeltaApplyMeanSec
		}
		fmt.Fprintf(os.Stderr, "maintenance %3dx %-6s build %6.1fms  delta apply %8.3fms (%d ops, %d tombstones)  %6.1fx vs rebuild\n",
			scale, kind, r.FullBuildSec*1e3, r.DeltaApplyMeanSec*1e3, deltaOps, r.Tombstones, r.SpeedupVsRebuild)
		out = append(out, r)
	}
	return out, nil
}

// benchErr runs fn b.N times, reporting allocations and failing on
// error.
func benchErr(b *testing.B, fn func() error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// gaussians draws n seeded standard-normal vectors of dimension d.
func gaussians(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X
}

// synthDB mirrors bench_test.go's 200-bag ranking fixture.
func synthDB(seed int64) ([]window.VS, map[int]mil.Label) {
	rng := rand.New(rand.NewSource(seed))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		nts := 1 + rng.Intn(3)
		for k := 0; k < nts; k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db = append(db, vs)
		if i < 20 {
			if i%2 == 0 {
				labels[i] = mil.Positive
			} else {
				labels[i] = mil.Negative
			}
		}
	}
	return db, labels
}
