// Command bench runs the pipeline-stage benchmarks programmatically
// and writes a machine-readable snapshot (BENCH_<n>.json in the repo
// root by default, picking the next free number) so performance can be
// tracked across commits without parsing `go test -bench` text output.
//
// Every stage is measured twice: serial (GOMAXPROCS=1) and parallel
// (GOMAXPROCS=max(2, NumCPU)), so snapshots record both the
// single-core cost and whatever overlap the host can actually deliver.
// On a single-core host the parallel numbers show the scheduling
// overhead of the concurrent paths, not a speedup — compare
// snapshot.num_cpu before reading them as scaling results.
//
// Usage:
//
//	go run ./cmd/bench            # writes BENCH_<n>.json
//	go run ./cmd/bench -o out.json
//	go run ./cmd/bench -stage background_histogram -o -   # one stage to stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"milvideo/internal/core"
	"milvideo/internal/experiments"
	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/render"
	"milvideo/internal/retrieval"
	"milvideo/internal/segment"
	"milvideo/internal/server"
	"milvideo/internal/sim"
	"milvideo/internal/svm"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

// Measurement is one benchmark run of a stage at a fixed GOMAXPROCS.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Result is one stage's serial and parallel measurements.
type Result struct {
	Name     string      `json:"name"`
	Serial   Measurement `json:"serial"`
	Parallel Measurement `json:"parallel"`
}

// Snapshot is the file format.
type Snapshot struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// ParallelProcs is the GOMAXPROCS the parallel measurements ran at.
	ParallelProcs int      `json:"parallel_procs"`
	Stages        []Result `json:"stages"`
}

type stage struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<n>.json; '-' for stdout)")
	only := flag.String("stage", "", "run a single stage by name")
	flag.Parse()

	stages, err := buildStages(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	parallelProcs := runtime.NumCPU()
	if parallelProcs < 2 {
		parallelProcs = 2
	}
	snap := Snapshot{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		ParallelProcs: parallelProcs,
	}
	prev := runtime.GOMAXPROCS(0)
	for _, s := range stages {
		if *only != "" && s.name != *only {
			continue
		}
		r := Result{
			Name:     s.name,
			Serial:   measure(s.fn, 1),
			Parallel: measure(s.fn, parallelProcs),
		}
		snap.Stages = append(snap.Stages, r)
		fmt.Fprintf(os.Stderr, "%-28s serial %14.0f ns/op %10d allocs/op | parallel %14.0f ns/op\n",
			s.name, r.Serial.NsPerOp, r.Serial.AllocsPerOp, r.Parallel.NsPerOp)
	}
	runtime.GOMAXPROCS(prev)
	if len(snap.Stages) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no stage matches %q\n", *only)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	path := *out
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if path == "" {
		path = nextBenchPath()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(path)
}

// measure runs one stage under testing.Benchmark at the given
// GOMAXPROCS.
func measure(fn func(b *testing.B), procs int) Measurement {
	prev := runtime.GOMAXPROCS(procs)
	r := testing.Benchmark(fn)
	runtime.GOMAXPROCS(prev)
	return Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// nextBenchPath returns BENCH_<n>.json for the smallest unused n ≥ 1.
func nextBenchPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// buildStages prepares shared fixtures and the stage list. Stage
// fixtures mirror the top-level go-test benchmarks (bench_test.go) so
// the two report comparable numbers. only narrows the run to one
// stage ("" runs all) so fixture warm-up can be skipped when unused.
func buildStages(only string) ([]stage, error) {
	scene, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 300, Seed: 9, SpawnEvery: 80, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		return nil, err
	}
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ex, err := segment.NewExtractor(clip, segment.DefaultOptions())
	if err != nil {
		return nil, err
	}
	midFrame := clip.Frames[len(clip.Frames)/2]
	cfg := core.DefaultConfig()

	// The batch-ingest fixture: eight short tunnel clips with distinct
	// seeds, ingested into a fresh catalog each op.
	batchJobs := make([]core.IngestJob, 8)
	for i := range batchJobs {
		s, err := sim.Tunnel(sim.TunnelConfig{
			Frames: 100, Seed: int64(i + 1), SpawnEvery: 80, WallCrash: 1, FPS: 25,
		})
		if err != nil {
			return nil, err
		}
		batchJobs[i] = core.IngestJob{Name: fmt.Sprintf("tunnel-%d", i+1), Scene: s}
	}

	svmX := gaussians(1, 60, 9)
	gramX := gaussians(4, 200, 9)
	db, labels := synthDB(2)

	// The query-service fixture: an in-process HTTP server over the
	// demo catalog, driven through a real TCP loopback client so the
	// stage measures the full network path (JSON, session store,
	// worker pool, SVM re-rank).
	demoDB, err := server.DemoDB(1)
	if err != nil {
		return nil, err
	}
	qsrv, err := server.New(server.Config{DB: demoDB})
	if err != nil {
		return nil, err
	}
	qclient := &server.Client{BaseURL: httptest.NewServer(qsrv.Handler()).URL}
	demoRec, err := demoDB.Clip(server.DemoClip)
	if err != nil {
		return nil, err
	}
	judge, err := server.JudgeFromRecord(demoRec, nil)
	if err != nil {
		return nil, err
	}

	// Warm the process-wide clip cache so the figure stages measure
	// steady-state experiment cost, not the one-time clip construction
	// (render + segment + track dominates a cold run by ~4 orders of
	// magnitude). Skipped when -stage selects a non-figure stage.
	if only == "" || only == "figure8_warm" || only == "figure9_warm" {
		if err := experiments.WarmClips(); err != nil {
			return nil, err
		}
	}

	return []stage{
		{"background_histogram", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackground(clip.Frames, 1); return err })
		}},
		{"background_sort_ref", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackgroundRef(clip.Frames, 1); return err })
		}},
		{"segmentation_per_frame", func(b *testing.B) {
			benchErr(b, func() error { _, err := ex.Segments(midFrame); return err })
		}},
		{"ingest_sequential_clip", func(b *testing.B) {
			benchErr(b, func() error { _, err := core.ProcessVideoSequential(clip, cfg); return err })
		}},
		{"ingest_stream_clip", func(b *testing.B) {
			benchErr(b, func() error { _, err := core.ProcessVideoStream(clip, cfg); return err })
		}},
		{"ingest_batch_8clips", func(b *testing.B) {
			benchErr(b, func() error {
				results := core.IngestScenes(videodb.New(), batchJobs, core.IngestOptions{Config: cfg})
				for _, r := range results {
					if r.Err != nil {
						return r.Err
					}
				}
				return nil
			})
		}},
		{"kernel_gram_200x9", func(b *testing.B) {
			k := kernel.RBF{Sigma: 1}
			benchErr(b, func() error { _, err := kernel.Matrix(k, gramX); return err })
		}},
		{"ocsvm_train_60x9", func(b *testing.B) {
			benchErr(b, func() error {
				_, err := svm.TrainOneClass(svmX, svm.Options{Nu: 0.2, Kernel: kernel.RBF{Sigma: 1}})
				return err
			})
		}},
		{"mil_rank_200bags", func(b *testing.B) {
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions()}
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"mil_rank_200bags_cache_cold", func(b *testing.B) {
			// A fresh cache every op: first-feedback-round cost, where
			// every pair is a miss that must also be stored.
			benchErr(b, func() error {
				engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
				_, err := engine.Rank(db, labels)
				return err
			})
		}},
		{"mil_rank_200bags_cache_warm", func(b *testing.B) {
			// One shared cache, prewarmed before timing: the steady-state
			// cost of every feedback round after the first.
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
			if _, err := engine.Rank(db, labels); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"server_session_5rounds", func(b *testing.B) {
			// One full interactive session over HTTP per op: query,
			// four judged feedback re-ranks, delete.
			benchErr(b, func() error {
				ctx := context.Background()
				resp, err := qclient.Query(ctx, server.QueryRequest{Clip: server.DemoClip, TopK: 8})
				if err != nil {
					return err
				}
				for r := 1; r < 5; r++ {
					fb := make([]server.FeedbackLabel, len(resp.TopK))
					for i, e := range resp.TopK {
						fb[i] = server.FeedbackLabel{VS: e.VS, Relevant: judge(e)}
					}
					if resp, err = qclient.Feedback(ctx, resp.Session, fb); err != nil {
						return err
					}
				}
				return qclient.Delete(ctx, resp.Session)
			})
		}},
		{"figure8_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure8(); return err })
		}},
		{"figure9_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure9(); return err })
		}},
	}, nil
}

// benchErr runs fn b.N times, reporting allocations and failing on
// error.
func benchErr(b *testing.B, fn func() error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// gaussians draws n seeded standard-normal vectors of dimension d.
func gaussians(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X
}

// synthDB mirrors bench_test.go's 200-bag ranking fixture.
func synthDB(seed int64) ([]window.VS, map[int]mil.Label) {
	rng := rand.New(rand.NewSource(seed))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		nts := 1 + rng.Intn(3)
		for k := 0; k < nts; k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db = append(db, vs)
		if i < 20 {
			if i%2 == 0 {
				labels[i] = mil.Positive
			} else {
				labels[i] = mil.Negative
			}
		}
	}
	return db, labels
}
