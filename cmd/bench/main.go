// Command bench runs the pipeline-stage benchmarks programmatically
// and writes a machine-readable snapshot (BENCH_<n>.json in the repo
// root by default, picking the next free number) so performance can be
// tracked across commits without parsing `go test -bench` text output.
//
// Usage:
//
//	go run ./cmd/bench            # writes BENCH_<n>.json
//	go run ./cmd/bench -o out.json
//	go run ./cmd/bench -stage background_histogram -o -   # one stage to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"milvideo/internal/experiments"
	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/render"
	"milvideo/internal/retrieval"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
	"milvideo/internal/svm"
	"milvideo/internal/window"
)

// Result is one stage's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Snapshot is the file format.
type Snapshot struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Stages     []Result `json:"stages"`
}

type stage struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<n>.json; '-' for stdout)")
	only := flag.String("stage", "", "run a single stage by name")
	flag.Parse()

	stages, err := buildStages(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	snap := Snapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, s := range stages {
		if *only != "" && s.name != *only {
			continue
		}
		r := testing.Benchmark(s.fn)
		snap.Stages = append(snap.Stages, Result{
			Name:        s.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "%-24s %14.0f ns/op %10d allocs/op\n",
			s.name, snap.Stages[len(snap.Stages)-1].NsPerOp, r.AllocsPerOp())
	}
	if len(snap.Stages) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no stage matches %q\n", *only)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	path := *out
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if path == "" {
		path = nextBenchPath()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(path)
}

// nextBenchPath returns BENCH_<n>.json for the smallest unused n ≥ 1.
func nextBenchPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// buildStages prepares shared fixtures and the stage list. Stage
// fixtures mirror the top-level go-test benchmarks (bench_test.go) so
// the two report comparable numbers. only narrows the run to one
// stage ("" runs all) so fixture warm-up can be skipped when unused.
func buildStages(only string) ([]stage, error) {
	scene, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 300, Seed: 9, SpawnEvery: 80, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		return nil, err
	}
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ex, err := segment.NewExtractor(clip, segment.DefaultOptions())
	if err != nil {
		return nil, err
	}
	midFrame := clip.Frames[len(clip.Frames)/2]

	svmX := gaussians(1, 60, 9)
	gramX := gaussians(4, 200, 9)
	db, labels := synthDB(2)

	// Warm the process-wide clip cache so the figure stages measure
	// steady-state experiment cost, not the one-time clip construction
	// (render + segment + track dominates a cold run by ~4 orders of
	// magnitude). Skipped when -stage selects a non-figure stage.
	if only == "" || only == "figure8_warm" {
		if _, err := experiments.Figure8(); err != nil {
			return nil, err
		}
	}
	if only == "" || only == "figure9_warm" {
		if _, err := experiments.Figure9(); err != nil {
			return nil, err
		}
	}

	return []stage{
		{"background_histogram", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackground(clip.Frames, 1); return err })
		}},
		{"background_sort_ref", func(b *testing.B) {
			benchErr(b, func() error { _, err := segment.LearnBackgroundRef(clip.Frames, 1); return err })
		}},
		{"segmentation_per_frame", func(b *testing.B) {
			benchErr(b, func() error { _, err := ex.Segments(midFrame); return err })
		}},
		{"kernel_gram_200x9", func(b *testing.B) {
			k := kernel.RBF{Sigma: 1}
			benchErr(b, func() error { _, err := kernel.Matrix(k, gramX); return err })
		}},
		{"ocsvm_train_60x9", func(b *testing.B) {
			benchErr(b, func() error {
				_, err := svm.TrainOneClass(svmX, svm.Options{Nu: 0.2, Kernel: kernel.RBF{Sigma: 1}})
				return err
			})
		}},
		{"mil_rank_200bags", func(b *testing.B) {
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions()}
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"mil_rank_200bags_cached", func(b *testing.B) {
			engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
			benchErr(b, func() error { _, err := engine.Rank(db, labels); return err })
		}},
		{"figure8_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure8(); return err })
		}},
		{"figure9_warm", func(b *testing.B) {
			benchErr(b, func() error { _, err := experiments.Figure9(); return err })
		}},
	}, nil
}

// benchErr runs fn b.N times, reporting allocations and failing on
// error.
func benchErr(b *testing.B, fn func() error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// gaussians draws n seeded standard-normal vectors of dimension d.
func gaussians(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X
}

// synthDB mirrors bench_test.go's 200-bag ranking fixture.
func synthDB(seed int64) ([]window.VS, map[int]mil.Label) {
	rng := rand.New(rand.NewSource(seed))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		nts := 1 + rng.Intn(3)
		for k := 0; k < nts; k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db = append(db, vs)
		if i < 20 {
			if i%2 == 0 {
				labels[i] = mil.Positive
			} else {
				labels[i] = mil.Negative
			}
		}
	}
	return db, labels
}
