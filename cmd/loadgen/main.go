// Command loadgen drives a running query service (cmd/serve) with
// closed-loop synthetic oracle sessions: each concurrent client seeds
// a query, judges the returned top-k against the clip's incident
// ground truth, posts feedback, and repeats — the paper's user study
// as a load test. The run's throughput and client-side latency
// percentiles are written as JSON (BENCH_3.json by convention).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -demo
//	loadgen -url http://127.0.0.1:8080 -db db.gob -clip tunnel -sessions 32 -o BENCH_3.json
//	loadgen -url http://coordinator -demo -coordinator -shards http://w0,http://w1
//	loadgen -url http://127.0.0.1:8080 -live -duration 20s
//	loadgen -url http://127.0.0.1:8080 -demo -predicate demo -topk 10
//
// The ground truth must describe the same clip the server ranks: pass
// the catalog via -db, or -demo (with the matching -demo-seed) when
// the server runs in demo mode. Exits nonzero when any round is
// dropped or comes back empty, so CI can assert on the exit code.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"milvideo/internal/predicate"
	"milvideo/internal/server"
	"milvideo/internal/videodb"
)

// output is the BENCH_3.json shape: run metadata around the
// generator's report.
type output struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	URL        string `json:"url"`
	Clip       string `json:"clip"`
	Engine     string `json:"engine"`
	TopK       int    `json:"topk"`
	Index      string `json:"index,omitempty"`
	Candidates int    `json:"candidates,omitempty"`
	Churn      bool   `json:"churn,omitempty"`
	Live       bool   `json:"live,omitempty"`
	// Predicates summarizes the structured queries a -predicate run
	// seeded its sessions with.
	Predicates []string `json:"predicates,omitempty"`
	// Coordinator marks a run against a cluster coordinator; Shards
	// lists the worker URLs whose stats the report snapshots.
	Coordinator bool           `json:"coordinator,omitempty"`
	Shards      []string       `json:"shards,omitempty"`
	Report      *server.Report `json:"report"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "query service base URL")
	dbPath := flag.String("db", "", "catalog file supplying the ground truth oracle")
	demo := flag.Bool("demo", false, "judge against the built-in demo catalog (server runs -demo)")
	demoSeed := flag.Int64("demo-seed", 1, "seed for the demo catalog (must match the server's)")
	demoScale := flag.Int("demo-scale", 1, "demo catalog size multiplier (must match the server's)")
	clip := flag.String("clip", server.DemoClip, "clip to query")
	engine := flag.String("engine", "", "ranking engine (empty = server default)")
	indexKind := flag.String("index", "", `candidate index sessions request ("vptree", "ivf", "exact", empty = server default)`)
	candidates := flag.Int("candidates", 0, "candidate-set size C for indexed sessions (0 = server default)")
	sessions := flag.Int("sessions", 32, "concurrent sessions")
	rounds := flag.Int("rounds", 5, "rounds per session including the initial one")
	topK := flag.Int("topk", 8, "results per round (0 = server default)")
	pred := flag.String("predicate", "", `seed sessions with structured predicate queries: "demo" cycles the canned demo mix, anything else is one inline JSON AST`)
	minRecall := flag.Float64("min-recall", 0, "with -predicate: fail unless round-0 recall reaches this and feedback never loses ground")
	churn := flag.Bool("churn", false, "interleave catalog ingests/removals with the query load (exercises incremental index maintenance)")
	live := flag.Bool("live", false, "drive a server running -ingest: loop sessions over the live feed clip for -duration (no ground truth needed)")
	duration := flag.Duration("duration", 20*time.Second, "live run length")
	coordinator := flag.Bool("coordinator", false, "target is a cluster coordinator: print its per-shard scatter breakdown after the run")
	shards := flag.String("shards", "", "comma-separated shard-worker URLs to snapshot per-shard stats from after the run")
	out := flag.String("o", "BENCH_3.json", "output path ('-' for stdout)")
	flag.Parse()

	var shardURLs []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			shardURLs = append(shardURLs, u)
		}
	}
	if *live {
		// The live feed is the default target unless -clip was given
		// explicitly.
		clipSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "clip" {
				clipSet = true
			}
		})
		if !clipSet {
			*clip = "live"
		}
	}
	if err := run(*url, *dbPath, *demo, *demoSeed, *demoScale, *clip, *engine, *indexKind, *pred, *minRecall, *candidates, *sessions, *rounds, *topK, *churn, *coordinator, *live, *duration, shardURLs, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(url, dbPath string, demo bool, demoSeed int64, demoScale int, clip, engine, indexKind, pred string, minRecall float64, candidates, sessions, rounds, topK int, churn, coordinator, live bool, duration time.Duration, shardURLs []string, out string) error {
	var preds []*predicate.Node
	if pred != "" {
		if live {
			return errors.New("-predicate needs a static catalog with ground truth, not -live")
		}
		if pred == "demo" {
			preds = server.DemoPredicates()
		} else {
			n, err := predicate.Decode([]byte(pred))
			if err != nil {
				return fmt.Errorf("-predicate: %w", err)
			}
			preds = []*predicate.Node{n}
		}
	}
	var judge server.Judge
	totalRelevant := 0
	if !live {
		// A static run judges against stored ground truth; a live feed
		// has none (the generator installs its stand-in).
		var rec *videodb.ClipRecord
		var err error
		switch {
		case demo && dbPath != "":
			return errors.New("-db and -demo are mutually exclusive")
		case demo:
			if rec, err = server.ScaledDemoRecord(demoSeed, demoScale); err != nil {
				return err
			}
			if rec.Name != clip {
				return fmt.Errorf("demo catalog has clip %q, not %q", rec.Name, clip)
			}
		case dbPath != "":
			db, err := videodb.LoadFile(dbPath)
			if err != nil {
				return err
			}
			if rec, err = db.Clip(clip); err != nil {
				return err
			}
		default:
			return errors.New("need -db <catalog> or -demo for the ground truth")
		}
		if judge, err = server.JudgeFromRecord(rec, nil); err != nil {
			return err
		}
		totalRelevant = server.RelevantVSCount(rec, judge)
	}

	lg := &server.LoadGen{
		Client:        &server.Client{BaseURL: url},
		Clip:          clip,
		Engine:        engine,
		Sessions:      sessions,
		Rounds:        rounds,
		TopK:          topK,
		Index:         indexKind,
		Candidates:    candidates,
		Judge:         judge,
		Predicates:    preds,
		TotalRelevant: totalRelevant,
		Churn:         churn,
		ShardURLs:     shardURLs,
		Live:          live,
		Duration:      duration,
	}
	if live {
		fmt.Fprintf(os.Stderr, "loadgen: %d live sessions against %s (feed clip %q) for %s\n",
			sessions, url, clip, duration)
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: %d sessions × %d rounds against %s (clip %q)\n",
			sessions, rounds, url, clip)
	}
	rep, err := lg.Run(context.Background())
	if err != nil {
		return err
	}

	res := output{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		URL:         url,
		Clip:        clip,
		Engine:      engine,
		TopK:        topK,
		Index:       indexKind,
		Candidates:  candidates,
		Churn:       churn,
		Live:        live,
		Coordinator: coordinator,
		Shards:      shardURLs,
		Report:      rep,
	}
	for _, p := range preds {
		res.Predicates = append(res.Predicates, p.Summary())
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	} else {
		fmt.Println(out)
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d/%d rounds served in %.2fs (%.1f rounds/s), final accuracy %.1f%%\n",
		rep.RoundsServed, sessions*rounds, rep.DurationSec, rep.RoundsPerSec, rep.FinalAccuracyMean*100)
	if len(rep.RoundRecall) > 0 {
		parts := make([]string, len(rep.RoundRecall))
		for r, v := range rep.RoundRecall {
			parts[r] = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(os.Stderr, "loadgen: round recall vs %d ground-truth incidents: %s\n",
			totalRelevant, strings.Join(parts, " "))
	}
	for _, op := range []string{"query", "feedback", "ranking"} {
		if st, ok := rep.Latency[op]; ok {
			fmt.Fprintf(os.Stderr, "loadgen:   %-8s p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  max %6.2fms  (n=%d)\n",
				op, st.P50Ms, st.P90Ms, st.P99Ms, st.MaxMs, st.Count)
		}
	}
	if churn {
		fmt.Fprintf(os.Stderr, "loadgen: churn applied %d catalog mutations during the run\n", rep.MutationsApplied)
	}
	if live {
		st := rep.ServerStats
		if st == nil || st.Ingest == nil {
			return errors.New("live run but the server reported no ingest daemon stats")
		}
		ig := st.Ingest
		fmt.Fprintf(os.Stderr, "loadgen: ingest committed %d segments (%d live, %d evicted in %d evictions, %d compactions)\n",
			ig.Committed, ig.LiveSegments, ig.EvictedSegments, ig.Evictions, ig.Compactions)
		fmt.Fprintf(os.Stderr, "loadgen: staleness p50 %.0fms  p99 %.0fms  max %.0fms  (bound %dms, %d violations)\n",
			ig.Staleness.P50Ms, ig.Staleness.P99Ms, ig.Staleness.MaxMs, ig.MaxStalenessMs, ig.StalenessViolations)
		if st.Live != nil {
			fmt.Fprintf(os.Stderr, "loadgen: live rounds %d (%d stale-race retries)\n", st.Live.Rounds, st.Live.Retries)
		}
	}
	printShardBreakdown(rep, coordinator, shardURLs)
	if rep.DroppedRounds > 0 {
		return fmt.Errorf("%d rounds dropped (first errors: %v)", rep.DroppedRounds, rep.Errors)
	}
	if rep.EmptyRankings > 0 {
		return fmt.Errorf("%d rounds returned empty rankings", rep.EmptyRankings)
	}
	if minRecall > 0 {
		if len(preds) == 0 {
			return errors.New("-min-recall needs -predicate sessions to judge")
		}
		if len(rep.RoundRecall) == 0 {
			return errors.New("-min-recall set but the run produced no recall series")
		}
		if rep.RoundRecall[0] < minRecall {
			return fmt.Errorf("predicate round-0 recall %.2f below the %.2f floor", rep.RoundRecall[0], minRecall)
		}
		for r := 1; r < len(rep.RoundRecall); r++ {
			if rep.RoundRecall[r] < rep.RoundRecall[r-1] {
				return fmt.Errorf("feedback lost recall at round %d: %.2f -> %.2f",
					r, rep.RoundRecall[r-1], rep.RoundRecall[r])
			}
		}
	}
	if live {
		ig := rep.ServerStats.Ingest
		if ig.Staleness.P99Ms > float64(ig.MaxStalenessMs) {
			return fmt.Errorf("queryable staleness p99 %.0fms exceeds the %dms bound",
				ig.Staleness.P99Ms, ig.MaxStalenessMs)
		}
	}
	return nil
}

// printShardBreakdown summarizes a cluster run on stderr: the
// coordinator's scatter/merge accounting and per-shard scatter
// latency, plus each polled worker's probe counters.
func printShardBreakdown(rep *server.Report, coordinator bool, shardURLs []string) {
	if coordinator && rep.ServerStats != nil && rep.ServerStats.Shard != nil {
		sh := rep.ServerStats.Shard
		fmt.Fprintf(os.Stderr, "loadgen: scatter %d rounds (%d full, %d partial) merged %d candidates  scatter %.1fms merge %.1fms total\n",
			sh.ScatterRounds, sh.FullRounds, sh.PartialRounds, sh.MergedCandidates, sh.ScatterMsTotal, sh.MergeMsTotal)
	}
	if coordinator && rep.ServerStats != nil && rep.ServerStats.Cluster != nil {
		cl := rep.ServerStats.Cluster
		fmt.Fprintf(os.Stderr, "loadgen: cluster %d/%d shards reachable, %d scatter probes served\n",
			cl.Reachable, cl.Shards, cl.ScatterServed)
		for i, n := range cl.PerShard {
			fmt.Fprintf(os.Stderr, "loadgen:   shard %d %-24s p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  (n=%d, timeouts %d, errors %d)\n",
				i, n.URL, n.Scatter.P50Ms, n.Scatter.P90Ms, n.Scatter.P99Ms, n.Scatter.Count, n.Timeouts, n.Errors)
		}
	}
	for i, st := range rep.ShardStats {
		u := ""
		if i < len(shardURLs) {
			u = shardURLs[i]
		}
		if st == nil {
			fmt.Fprintf(os.Stderr, "loadgen:   worker %d %-24s unreachable\n", i, u)
			continue
		}
		served := int64(0)
		if st.Shard != nil {
			served = st.Shard.ScatterServed
		}
		fmt.Fprintf(os.Stderr, "loadgen:   worker %d %-24s scatter_served %d  builds %d  applies %d  tombstones %d\n",
			i, u, served, st.Index.Builds, st.Index.IncrementalApplies, st.Index.Tombstones)
	}
}
