// Command retbench generates a graded incident-retrieval benchmark
// suite and scores the serving stack against its exact ground truth,
// writing a machine-readable report (RETBENCH.json by default).
//
// A suite is a set of seeded scenarios — tunnel and intersection
// worlds carrying the full eight-type incident taxonomy, including a
// two-camera scenario reconciled through homography into cross-camera
// trajectories. Every (scenario, category) pair runs one MIL feedback
// session per serving path (exact, candidate C=N, quantized IVF,
// sharded scatter–gather) and is scored with recall@k and mean
// average precision against the simulator's incident log.
//
// Usage:
//
//	go run ./cmd/retbench                      # easy tier, seed 1, RETBENCH.json
//	go run ./cmd/retbench -tier hard -seed 7 -o -   # hard tier to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"milvideo/internal/retbench"
)

func main() {
	tier := flag.String("tier", "easy", "suite tier: easy, medium or hard")
	seed := flag.Int64("seed", 1, "suite seed (per-scenario seeds derive from it)")
	out := flag.String("o", "RETBENCH.json", "output path, or - for stdout")
	rounds := flag.Int("rounds", 0, "feedback rounds per session (0 = default 5)")
	topk := flag.Int("topk", 0, "results labeled per round (0 = default 10)")
	k := flag.Int("k", 0, "recall cutoff (0 = default 10)")
	flag.Parse()

	if err := run(*tier, *seed, *out, retbench.RunConfig{Rounds: *rounds, TopK: *topk, K: *k}); err != nil {
		fmt.Fprintln(os.Stderr, "retbench:", err)
		os.Exit(1)
	}
}

func run(tier string, seed int64, out string, cfg retbench.RunConfig) error {
	suite, err := retbench.Generate(tier, seed)
	if err != nil {
		return err
	}
	rep, err := retbench.Run(suite, cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("retbench: %s tier, seed %d, %d scenarios -> %s\n",
		rep.Tier, rep.Seed, len(suite.Scenarios), out)
	return nil
}
