// Command experiments regenerates the paper's tables and figures
// (and the ablations DESIGN.md calls out) from scratch: it simulates
// the two clips, runs the full vision pipeline on the rendered
// pixels, then drives the five-round retrieval protocol.
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp fig8  # run one experiment (see -list)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"milvideo/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, or one of -list)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	var tables []experiments.Table
	var err error
	if *exp == "all" {
		tables, err = experiments.All()
	} else {
		var t experiments.Table
		t, err = experiments.ByName(*exp)
		tables = []experiments.Table{t}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
}
