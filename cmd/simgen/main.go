// Command simgen generates a synthetic surveillance clip, runs the
// full vision pipeline over its rendered frames, and stores the
// processed result (video sequences, trajectory features, ground
// truth) in a videodb catalog file for cmd/milquery and downstream
// analysis.
//
// Usage:
//
//	simgen -scenario tunnel -out db.gob
//	simgen -scenario intersection -frames 800 -seed 7 -out db.gob
//
// When -out names an existing catalog, the clip is added to it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"milvideo/internal/core"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

func main() {
	scenario := flag.String("scenario", "tunnel", "scenario: tunnel or intersection")
	frames := flag.Int("frames", 0, "clip length in frames (0 = paper default)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = paper default)")
	name := flag.String("name", "", "clip name in the catalog (default: scenario name)")
	out := flag.String("out", "videodb.gob", "catalog file to create or extend")
	flag.Parse()

	if err := run(*scenario, *frames, *seed, *name, *out); err != nil {
		fmt.Fprintln(os.Stderr, "simgen:", err)
		os.Exit(1)
	}
}

func run(scenario string, frames int, seed int64, name, out string) error {
	var scene *sim.Scene
	var err error
	switch scenario {
	case "tunnel":
		cfg := sim.DefaultTunnel()
		if frames > 0 {
			cfg.Frames = frames
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		scene, err = sim.Tunnel(cfg)
	case "intersection":
		cfg := sim.DefaultIntersection()
		if frames > 0 {
			cfg.Frames = frames
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		scene, err = sim.Intersection(cfg)
	default:
		return fmt.Errorf("unknown scenario %q (tunnel, intersection)", scenario)
	}
	if err != nil {
		return err
	}

	fmt.Printf("simulated %q: %d frames, %d vehicles, %d incidents\n",
		scene.Name, len(scene.Frames), scene.VehicleCount(), len(scene.Incidents))
	clip, err := core.ProcessScene(scene, core.DefaultConfig())
	if err != nil {
		return err
	}
	if name == "" {
		name = scenario
	}
	rec, err := clip.Record(name)
	if err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Printf("processed: %d tracks, %d VSs, %d TSs\n", len(clip.Tracks), st.VSCount, st.TSCount)
	if q, err := clip.TrackingQuality(12); err == nil {
		fmt.Printf("tracking quality: %v\n", q)
	}

	db := videodb.New()
	if _, statErr := os.Stat(out); statErr == nil {
		db, err = videodb.LoadFile(out)
		if err != nil {
			return err
		}
	} else if !errors.Is(statErr, os.ErrNotExist) {
		return statErr
	}
	if err := db.Add(rec); err != nil {
		return err
	}
	if err := db.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("stored clip %q in %s (%d clips total)\n", name, out, db.Len())
	return nil
}
