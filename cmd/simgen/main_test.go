package main

import (
	"path/filepath"
	"testing"

	"milvideo/internal/videodb"
)

func TestRunCreatesCatalog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db.gob")
	if err := run("tunnel", 300, 5, "", out); err != nil {
		t.Fatal(err)
	}
	db, err := videodb.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.Clip("tunnel")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 300 {
		t.Fatalf("frames: %d", rec.Frames)
	}
	if rec.TSCount() == 0 {
		t.Fatal("no TSs stored")
	}
}

func TestRunExtendsExistingCatalog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db.gob")
	if err := run("tunnel", 300, 5, "a", out); err != nil {
		t.Fatal(err)
	}
	if err := run("intersection", 200, 5, "b", out); err != nil {
		t.Fatal(err)
	}
	db, err := videodb.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("clips: %d", db.Len())
	}
	// Re-adding the same name fails.
	if err := run("tunnel", 300, 5, "a", out); err == nil {
		t.Fatal("duplicate clip accepted")
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run("freeway", 100, 1, "", filepath.Join(t.TempDir(), "db.gob")); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
