// Command serve runs the interactive retrieval query service: the
// paper's relevance-feedback loop (query → top-k → feedback →
// One-class SVM re-rank) exposed as a concurrent, stateful JSON API
// over a videodb catalog.
//
// Usage:
//
//	serve -db db.gob                       # serve a stored catalog
//	serve -demo                            # built-in synthetic catalog
//	serve -db db.gob -addr 127.0.0.1:0     # ephemeral port (printed)
//	serve -demo -index ivf -candidates 64  # route sessions through the
//	                                       # candidate index by default
//	serve -demo -index vptree -quant pq    # quantize the index's probe
//	                                       # structures (exact re-rank)
//	serve -demo -local-shards 4            # in-process sharded serving:
//	                                       # scatter–gather over 4 shards
//	serve -demo -shard 0/3                 # cluster worker: serve shard
//	                                       # 0 of a 3-way partition
//	serve -demo -shards u0,u1,u2           # cluster coordinator over
//	                                       # three worker URLs
//	serve -ingest -snapshot live.db        # always-on: live ingest
//	                                       # daemon feeds the catalog
//
// The process drains in-flight re-ranks and exits cleanly on SIGINT /
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"milvideo/internal/faults"
	"milvideo/internal/ingestd"
	"milvideo/internal/server"
	"milvideo/internal/shard"
	"milvideo/internal/videodb"
)

// options collects the flag values run needs.
type options struct {
	addr, dbPath  string
	demo          bool
	demoSeed      int64
	demoScale     int
	maxSessions   int
	ttl, timeout  time.Duration
	workers, topK int
	indexKind     string
	quant         string
	candidates    int
	maxBody       int64
	recover       bool

	// Sharded serving: -local-shards partitions in-process; -shard
	// "i/n" makes this process cluster worker i of n (its catalog is
	// filtered to the partition it owns); -shards lists worker URLs
	// and makes this process the cluster coordinator.
	localShards   int
	shardSpec     string
	shardURLs     string
	shardTimeout  time.Duration
	savePartition string

	// Always-on ingest: -ingest attaches a live ingest daemon whose
	// feed clip is committed, indexed and retired while the server
	// keeps serving sessions.
	ingest         bool
	ingestSource   string
	ingestDir      string
	ingestInterval time.Duration
	ingestFrames   int
	ingestSeed     int64
	ingestWorkers  int
	maxStaleness   time.Duration
	retainSegments int
	retainTTL      time.Duration
	snapshotPath   string
	snapshotEvery  time.Duration

	// Chaos flags: deterministic fault injection for resilience
	// drills. All rates zero (the default) leaves the server provably
	// untouched.
	faultSeed     int64
	faultSlowRate float64
	faultSlowDur  time.Duration
	faultFailRate float64

	faultSlowShardRate float64
	faultSlowShardDur  time.Duration
	faultFailShardRate float64

	faultAdmitDrop    float64
	faultCommitFail   float64
	faultSnapshotFail float64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	flag.StringVar(&o.dbPath, "db", "", "videodb catalog file to serve")
	flag.BoolVar(&o.demo, "demo", false, "serve the built-in synthetic demo catalog instead of -db")
	flag.Int64Var(&o.demoSeed, "demo-seed", 1, "seed for the demo catalog")
	flag.IntVar(&o.demoScale, "demo-scale", 1, "demo catalog size multiplier (1 = 48 VSs)")
	flag.IntVar(&o.maxSessions, "max-sessions", 256, "live-session cap (LRU eviction beyond it)")
	flag.DurationVar(&o.ttl, "ttl", 15*time.Minute, "idle-session expiry")
	flag.IntVar(&o.workers, "workers", 0, "concurrent re-rank bound (0 = GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request ranking timeout")
	flag.IntVar(&o.topK, "topk", 20, "default results per round")
	flag.StringVar(&o.indexKind, "index", "", `default candidate index for sessions ("vptree", "ivf", or empty for exact)`)
	flag.StringVar(&o.quant, "quant", "", `instance-feature quantization for candidate indexes ("scalar", "pq", or empty/"none" for exact float probing)`)
	flag.IntVar(&o.candidates, "candidates", 64, "default candidate-set size C for indexed sessions")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "request-body size cap in bytes (413 beyond it)")
	flag.BoolVar(&o.recover, "recover", false, "load -db in recovery mode, skipping corrupt records")
	flag.IntVar(&o.localShards, "local-shards", 0, "serve indexed sessions through S in-process shards (0/1 = unsharded)")
	flag.StringVar(&o.shardSpec, "shard", "", `run as cluster shard worker "i/n" (serves partition i of an n-way split)`)
	flag.StringVar(&o.shardURLs, "shards", "", "run as cluster coordinator over these comma-separated worker URLs")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", 10*time.Second, "per-shard probe deadline for scattered rounds")
	flag.StringVar(&o.savePartition, "save-partition", "", "with -shard: write this worker's partitioned catalog to the path and exit")
	flag.BoolVar(&o.ingest, "ingest", false, "run an always-on ingest daemon feeding the live clip (works with an empty catalog)")
	flag.StringVar(&o.ingestSource, "ingest-source", "sim", `ingest clip source: "sim" (synthetic traffic) or "dir" (watch -ingest-dir)`)
	flag.StringVar(&o.ingestDir, "ingest-dir", "", "directory the dir source watches for .gob clip segments")
	flag.DurationVar(&o.ingestInterval, "ingest-interval", 2*time.Second, "sim source: delay between segments; dir source: scan interval")
	flag.IntVar(&o.ingestFrames, "ingest-frames", 100, "sim source: frames per synthetic segment")
	flag.Int64Var(&o.ingestSeed, "ingest-seed", 1, "sim source: scenario seed")
	flag.IntVar(&o.ingestWorkers, "ingest-workers", 2, "concurrent segment-processing workers")
	flag.DurationVar(&o.maxStaleness, "max-staleness", 5*time.Second, "queryable-staleness objective (arrival to index-applied)")
	flag.IntVar(&o.retainSegments, "retain-segments", 16, "retention: live feed segments kept before eviction")
	flag.DurationVar(&o.retainTTL, "retain-ttl", 0, "retention: evict segments older than this (0 = count-based only)")
	flag.StringVar(&o.snapshotPath, "snapshot", "", "periodic checksummed catalog snapshot path (restart recovers from it)")
	flag.DurationVar(&o.snapshotEvery, "snapshot-every", 10*time.Second, "snapshot interval")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "chaos: fault-schedule seed")
	flag.Float64Var(&o.faultSlowRate, "fault-slow", 0, "chaos: injected slow re-rank rate [0,1]")
	flag.DurationVar(&o.faultSlowDur, "fault-slow-dur", 50*time.Millisecond, "chaos: injected stall duration")
	flag.Float64Var(&o.faultFailRate, "fault-fail", 0, "chaos: injected failed re-rank rate [0,1]")
	flag.Float64Var(&o.faultSlowShardRate, "fault-slow-shard", 0, "chaos: injected slow shard-probe rate [0,1]")
	flag.DurationVar(&o.faultSlowShardDur, "fault-slow-shard-dur", 50*time.Millisecond, "chaos: injected shard stall duration")
	flag.Float64Var(&o.faultFailShardRate, "fault-fail-shard", 0, "chaos: injected failed shard-probe rate [0,1]")
	flag.Float64Var(&o.faultAdmitDrop, "fault-admit-drop", 0, "chaos: ingest admission shed rate [0,1]")
	flag.Float64Var(&o.faultCommitFail, "fault-commit-fail", 0, "chaos: transient ingest commit failure rate [0,1]")
	flag.Float64Var(&o.faultSnapshotFail, "fault-snapshot-fail", 0, "chaos: ingest snapshot failure rate [0,1]")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// parseShardSpec parses "i/n" into (index, count).
func parseShardSpec(spec string) (int, int, error) {
	var idx, cnt int
	if n, err := fmt.Sscanf(spec, "%d/%d", &idx, &cnt); n != 2 || err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want \"i/n\", e.g. 0/3)", spec)
	}
	if cnt < 2 || idx < 0 || idx >= cnt {
		return 0, 0, fmt.Errorf("bad -shard %q: index must be in 0..n-1 with n >= 2", spec)
	}
	return idx, cnt, nil
}

func run(o options) error {
	shardIdx, shardCnt := 0, 0
	if o.shardSpec != "" {
		if o.shardURLs != "" {
			return errors.New("-shard and -shards are mutually exclusive (worker vs coordinator)")
		}
		if o.localShards > 1 {
			return errors.New("-shard and -local-shards are mutually exclusive")
		}
		var err error
		if shardIdx, shardCnt, err = parseShardSpec(o.shardSpec); err != nil {
			return err
		}
	}
	if o.savePartition != "" && shardCnt == 0 {
		return errors.New("-save-partition requires -shard i/n")
	}
	if o.ingest && (o.shardSpec != "" || o.shardURLs != "" || o.localShards > 1) {
		return errors.New("-ingest is incompatible with sharded serving (-shard/-shards/-local-shards)")
	}

	var db *videodb.DB
	var err error
	switch {
	case o.demo && o.dbPath != "":
		return errors.New("-db and -demo are mutually exclusive")
	case o.demo:
		rec, err := server.ScaledDemoRecord(o.demoSeed, o.demoScale)
		if err != nil {
			return err
		}
		db = videodb.New()
		if err := db.Add(rec); err != nil {
			return err
		}
	case o.dbPath != "" && o.recover:
		var rep videodb.RecoveryReport
		if db, rep, err = videodb.LoadFileRecovering(o.dbPath); err != nil {
			return err
		}
		if !rep.Clean() {
			fmt.Printf("serve: recovered catalog: %v\n", rep)
			for _, sk := range rep.Skipped {
				fmt.Printf("serve:   skipped record %d (%s): %v\n", sk.Index, sk.Name, sk.Err)
			}
		}
	case o.dbPath != "":
		if db, err = videodb.LoadFile(o.dbPath); err != nil {
			return err
		}
	case o.ingest:
		// An always-on deployment can start from nothing: the daemon's
		// first commit publishes the feed clip.
		db = videodb.New()
	default:
		return errors.New("need -db <catalog>, -demo, or -ingest")
	}

	if shardCnt > 0 {
		// Cluster worker: keep only the partition this shard owns.
		// Each worker's catalog is its own videodb.DB behind the same
		// v2 checksummed snapshot format, so -save-partition gives the
		// shard a private recoverable persistence file for free.
		ring := shard.NewRing(shardCnt)
		part := videodb.New()
		for _, name := range db.Names() {
			rec, err := db.Clip(name)
			if err != nil {
				return err
			}
			if prec := shard.PartitionRecord(ring, rec, shardIdx); prec != nil {
				if err := part.Add(prec); err != nil {
					return err
				}
			}
		}
		fmt.Printf("serve: shard %d/%d owns %d of %d clips\n", shardIdx, shardCnt, part.Len(), db.Len())
		db = part
		if o.savePartition != "" {
			if err := db.SaveFile(o.savePartition); err != nil {
				return err
			}
			fmt.Printf("serve: wrote shard %d/%d partition to %s\n", shardIdx, shardCnt, o.savePartition)
			return nil
		}
	}

	var inj *faults.Injector
	if o.faultSlowRate > 0 || o.faultFailRate > 0 || o.faultSlowShardRate > 0 || o.faultFailShardRate > 0 ||
		o.faultAdmitDrop > 0 || o.faultCommitFail > 0 || o.faultSnapshotFail > 0 {
		inj = faults.New(faults.Config{
			Seed:          o.faultSeed,
			SlowRerank:    o.faultSlowRate,
			SlowRerankDur: o.faultSlowDur,
			FailRerank:    o.faultFailRate,
			SlowShard:     o.faultSlowShardRate,
			SlowShardDur:  o.faultSlowShardDur,
			FailShard:     o.faultFailShardRate,
			AdmitDrop:     o.faultAdmitDrop,
			CommitFail:    o.faultCommitFail,
			SnapshotFail:  o.faultSnapshotFail,
		})
		fmt.Printf("serve: chaos injector armed (seed %d, slow %g, fail %g, slow-shard %g, fail-shard %g, admit-drop %g, commit-fail %g, snapshot-fail %g)\n",
			o.faultSeed, o.faultSlowRate, o.faultFailRate, o.faultSlowShardRate, o.faultFailShardRate,
			o.faultAdmitDrop, o.faultCommitFail, o.faultSnapshotFail)
	}

	var urls []string
	if o.shardURLs != "" {
		for _, u := range strings.Split(o.shardURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return errors.New("-shards given but no worker URLs parsed")
		}
		fmt.Printf("serve: coordinator over %d shard workers\n", len(urls))
	}
	if o.localShards > 1 {
		fmt.Printf("serve: in-process sharding over %d shards\n", o.localShards)
	}

	var daemon *ingestd.Daemon
	if o.ingest {
		var src ingestd.Source
		switch o.ingestSource {
		case "sim":
			src = &ingestd.SimSource{
				Frames:   o.ingestFrames,
				Seed:     o.ingestSeed,
				Interval: o.ingestInterval,
			}
		case "dir":
			if o.ingestDir == "" {
				return errors.New("-ingest-source dir needs -ingest-dir")
			}
			src = &ingestd.DirSource{Dir: o.ingestDir, Poll: o.ingestInterval}
		default:
			return fmt.Errorf("unknown -ingest-source %q (want sim or dir)", o.ingestSource)
		}
		daemon, err = ingestd.New(ingestd.Config{
			DB:             db,
			Source:         src,
			Workers:        o.ingestWorkers,
			MaxStaleness:   o.maxStaleness,
			RetainSegments: o.retainSegments,
			RetainTTL:      o.retainTTL,
			SnapshotPath:   o.snapshotPath,
			SnapshotEvery:  o.snapshotEvery,
			Faults:         inj,
			Logf: func(format string, args ...any) {
				fmt.Printf("serve: ingest: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("serve: ingest daemon feeding clip %q (source %s, max staleness %s, retain %d segments)\n",
			daemon.FeedClip(), o.ingestSource, o.maxStaleness, o.retainSegments)
	}

	srv, err := server.New(server.Config{
		DB:                db,
		MaxSessions:       o.maxSessions,
		SessionTTL:        o.ttl,
		RerankWorkers:     o.workers,
		RequestTimeout:    o.timeout,
		DefaultTopK:       o.topK,
		DefaultIndex:      o.indexKind,
		DefaultCandidates: o.candidates,
		Quant:             o.quant,
		MaxBodyBytes:      o.maxBody,
		Faults:            inj,
		Shards:            o.localShards,
		ShardTimeout:      o.shardTimeout,
		ShardURLs:         urls,
		PartitionIndex:    shardIdx,
		PartitionCount:    shardCnt,
		Ingest:            daemon,
	})
	if err != nil {
		return err
	}
	if daemon != nil {
		if err := daemon.Start(context.Background(), srv); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: listening on http://%s (%d clips)\n", ln.Addr(), db.Len())
	for _, n := range db.Names() {
		rec, err := db.Clip(n)
		if err != nil {
			return err
		}
		s := rec.Stats()
		fmt.Printf("serve:   clip %-16s %5d frames  %3d VSs  %3d TSs\n", n, s.Frames, s.VSCount, s.TSCount)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("serve: %v — shutting down\n", s)
	}

	// Stop the feed first (its final snapshot lands before we go),
	// stop accepting, finish in-flight HTTP, then drain the re-rank
	// pool so no SVM training is cut off mid-round.
	if daemon != nil {
		daemon.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("serve: drained, bye")
	return nil
}
