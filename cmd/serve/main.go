// Command serve runs the interactive retrieval query service: the
// paper's relevance-feedback loop (query → top-k → feedback →
// One-class SVM re-rank) exposed as a concurrent, stateful JSON API
// over a videodb catalog.
//
// Usage:
//
//	serve -db db.gob                       # serve a stored catalog
//	serve -demo                            # built-in synthetic catalog
//	serve -db db.gob -addr 127.0.0.1:0     # ephemeral port (printed)
//
// The process drains in-flight re-ranks and exits cleanly on SIGINT /
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"milvideo/internal/server"
	"milvideo/internal/videodb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	dbPath := flag.String("db", "", "videodb catalog file to serve")
	demo := flag.Bool("demo", false, "serve the built-in synthetic demo catalog instead of -db")
	demoSeed := flag.Int64("demo-seed", 1, "seed for the demo catalog")
	maxSessions := flag.Int("max-sessions", 256, "live-session cap (LRU eviction beyond it)")
	ttl := flag.Duration("ttl", 15*time.Minute, "idle-session expiry")
	workers := flag.Int("workers", 0, "concurrent re-rank bound (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request ranking timeout")
	topK := flag.Int("topk", 20, "default results per round")
	flag.Parse()

	if err := run(*addr, *dbPath, *demo, *demoSeed, *maxSessions, *ttl, *workers, *timeout, *topK); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr, dbPath string, demo bool, demoSeed int64, maxSessions int, ttl time.Duration, workers int, timeout time.Duration, topK int) error {
	var db *videodb.DB
	var err error
	switch {
	case demo && dbPath != "":
		return errors.New("-db and -demo are mutually exclusive")
	case demo:
		if db, err = server.DemoDB(demoSeed); err != nil {
			return err
		}
	case dbPath != "":
		if db, err = videodb.LoadFile(dbPath); err != nil {
			return err
		}
	default:
		return errors.New("need -db <catalog> or -demo")
	}

	srv, err := server.New(server.Config{
		DB:             db,
		MaxSessions:    maxSessions,
		SessionTTL:     ttl,
		RerankWorkers:  workers,
		RequestTimeout: timeout,
		DefaultTopK:    topK,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: listening on http://%s (%d clips)\n", ln.Addr(), db.Len())
	for _, n := range db.Names() {
		rec, err := db.Clip(n)
		if err != nil {
			return err
		}
		s := rec.Stats()
		fmt.Printf("serve:   clip %-16s %5d frames  %3d VSs  %3d TSs\n", n, s.Frames, s.VSCount, s.TSCount)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("serve: %v — shutting down\n", s)
	}

	// Stop accepting, finish in-flight HTTP, then drain the re-rank
	// pool so no SVM training is cut off mid-round.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close()
	fmt.Println("serve: drained, bye")
	return nil
}
