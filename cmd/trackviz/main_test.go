package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunTunnel(t *testing.T) {
	if err := run(io.Discard, "tunnel", 200, 3, -1, 60, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecificFrameAndDump(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "frames")
	if err := run(io.Discard, "intersection", 120, 3, 60, 60, false, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 120 PGM frames plus index.txt.
	if len(entries) != 121 {
		t.Fatalf("dumped %d entries", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, "freeway", 100, 1, -1, 60, false, ""); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(io.Discard, "tunnel", 100, 1, 500, 60, false, ""); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
}
