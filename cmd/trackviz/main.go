// Command trackviz runs the vision pipeline on a simulated clip and
// renders an ASCII view of chosen frames with the learned background,
// the extracted segments and the track trails, plus a tracking
// quality report against ground truth. It is the debugging lens for
// the segmentation and tracking substrate (the role of the paper's
// Fig. 1 screenshot).
//
// Usage:
//
//	trackviz -scenario tunnel -frame 760
//	trackviz -scenario intersection -frames 592 -quality
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"milvideo/internal/core"
	"milvideo/internal/frame"
	"milvideo/internal/sim"
)

func main() {
	scenario := flag.String("scenario", "tunnel", "scenario: tunnel or intersection")
	frames := flag.Int("frames", 600, "clip length in frames")
	seed := flag.Int64("seed", 1, "simulation seed")
	frameIdx := flag.Int("frame", -1, "frame to render (-1 = densest frame)")
	cols := flag.Int("cols", 96, "ASCII width in characters")
	quality := flag.Bool("quality", true, "print the tracking quality report")
	dump := flag.String("dump", "", "directory to dump the rendered clip as PGM frames")
	flag.Parse()

	if err := run(os.Stdout, *scenario, *frames, *seed, *frameIdx, *cols, *quality, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "trackviz:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, scenario string, frames int, seed int64, frameIdx, cols int, quality bool, dump string) error {
	var scene *sim.Scene
	var err error
	switch scenario {
	case "tunnel":
		cfg := sim.DefaultTunnel()
		cfg.Frames, cfg.Seed = frames, seed
		scene, err = sim.Tunnel(cfg)
	case "intersection":
		cfg := sim.DefaultIntersection()
		cfg.Frames, cfg.Seed = frames, seed
		scene, err = sim.Intersection(cfg)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	if err != nil {
		return err
	}
	clip, err := core.ProcessScene(scene, core.DefaultConfig())
	if err != nil {
		return err
	}

	if frameIdx < 0 {
		// Pick the frame with the most simultaneous vehicles.
		best := 0
		for _, fs := range scene.Frames {
			if len(fs.Vehicles) > len(scene.Frames[best].Vehicles) {
				best = fs.Index
			}
		}
		frameIdx = best
	}
	if frameIdx >= clip.Video.Len() {
		return fmt.Errorf("frame %d outside clip of %d frames", frameIdx, clip.Video.Len())
	}

	fmt.Fprintf(out, "frame %d of %q (%d vehicles on scene)\n",
		frameIdx, scene.Name, len(scene.Frames[frameIdx].Vehicles))
	img := clip.Video.Frames[frameIdx].Clone()
	overlayTracks(img, clip, frameIdx)
	fmt.Fprint(out, img.ASCII(cols))

	fmt.Fprintf(out, "\ntracks crossing frame %d:\n", frameIdx)
	for _, t := range clip.Tracks {
		if o, ok := t.At(frameIdx); ok {
			fmt.Fprintf(out, "  track %3d: centroid %v MBR %v (frames %d-%d)\n",
				t.ID, o.Centroid, o.MBR, t.Start(), t.End())
		}
	}
	if quality {
		q, err := clip.TrackingQuality(12)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntracking quality: %v\n", q)
	}
	if dump != "" {
		if err := frame.SaveVideoDir(clip.Video, dump); err != nil {
			return err
		}
		fmt.Fprintf(out, "dumped %d PGM frames to %s\n", clip.Video.Len(), dump)
	}
	return nil
}

// overlayTracks paints each track's recent trail into the frame as
// bright dots so the ASCII view shows motion history.
func overlayTracks(img *frame.Gray, clip *core.Clip, at int) {
	for _, t := range clip.Tracks {
		for f := at - 40; f <= at; f++ {
			if o, ok := t.At(f); ok {
				img.Set(int(o.Centroid.X), int(o.Centroid.Y), 255)
			}
		}
	}
}
