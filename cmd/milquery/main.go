// Command milquery runs an interactive (or simulated) relevance-
// feedback retrieval session over a stored clip, reproducing the
// paper's Fig. 7 workflow in a terminal: each round the top-K video
// sequences are listed, feedback is collected, and the chosen engine
// re-ranks the database.
//
// Usage:
//
//	milquery -db db.gob -clip tunnel                 # simulated user
//	milquery -db db.gob -clip tunnel -interactive    # human feedback
//	milquery -db db.gob -clip tunnel -engine weighted -rounds 4
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"milvideo/internal/core"
	"milvideo/internal/retrieval"
	"milvideo/internal/videodb"
	"milvideo/internal/window"
)

func main() {
	dbPath := flag.String("db", "videodb.gob", "videodb catalog file")
	clip := flag.String("clip", "", "clip name (empty lists clips)")
	engineName := flag.String("engine", core.DefaultEngine,
		fmt.Sprintf("engine: %s", strings.Join(core.EngineNames(), ", ")))
	rounds := flag.Int("rounds", 5, "feedback rounds including the initial one")
	topK := flag.Int("topk", 20, "results per round")
	interactive := flag.Bool("interactive", false, "ask a human instead of the ground-truth oracle")
	flag.Parse()

	if err := run(*dbPath, *clip, *engineName, *rounds, *topK, *interactive, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "milquery:", err)
		os.Exit(1)
	}
}

func run(dbPath, clip, engineName string, rounds, topK int, interactive bool, in io.Reader, out io.Writer) error {
	db, err := videodb.LoadFile(dbPath)
	if err != nil {
		return err
	}
	if clip == "" {
		fmt.Fprintln(out, "clips in catalog:")
		for _, n := range db.Names() {
			rec, err := db.Clip(n)
			if err != nil {
				return err
			}
			s := rec.Stats()
			fmt.Fprintf(out, "  %-16s %5d frames  %3d VSs  %3d TSs  %d incidents\n",
				n, s.Frames, s.VSCount, s.TSCount, s.Incidents)
		}
		return nil
	}
	rec, err := db.Clip(clip)
	if err != nil {
		return err
	}

	// The shared registry resolves the engine, with a per-session
	// kernel cache so Gram rows are reused across feedback rounds —
	// the identical code path the HTTP query service drives.
	engine, err := core.EngineByName(engineName, retrieval.NewMILCache())
	if err != nil {
		return err
	}

	var sess *retrieval.Session
	if interactive {
		sess = &retrieval.Session{
			DB:     rec.VSs,
			Oracle: &humanOracle{in: bufio.NewScanner(in), out: out},
			TopK:   topK,
		}
	} else {
		sess, err = core.SessionFromRecord(rec, nil, topK)
		if err != nil {
			return err
		}
	}

	res, err := sess.Run(engine, rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nengine %s on clip %q (%d VSs, %d relevant):\n",
		res.Engine, clip, len(rec.VSs), sess.GroundTruthRelevant())
	names := []string{"Initial", "First", "Second", "Third", "Fourth"}
	for i, r := range res.Rounds {
		name := fmt.Sprintf("Round %d", i)
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(out, "  %-8s accuracy %5.1f%%  (%d newly labeled)\n", name, r.Accuracy*100, r.NewLabels)
	}
	return nil
}

// humanOracle asks the terminal user about each VS, showing its frame
// range and a summary of the trajectories inside — a text stand-in
// for the paper's video-playback interface.
type humanOracle struct {
	in  *bufio.Scanner
	out io.Writer
	// answers caches judgments so a VS re-shown in a later round is
	// not asked twice.
	answers map[int]bool
}

// Relevant implements retrieval.Oracle.
func (h *humanOracle) Relevant(vs window.VS) bool {
	if h.answers == nil {
		h.answers = make(map[int]bool)
	}
	if a, ok := h.answers[vs.Index]; ok {
		return a
	}
	fmt.Fprintf(h.out, "VS %d: frames %d-%d, %d vehicle trajectories, peak point score %.2f\n",
		vs.Index, vs.StartFrame, vs.EndFrame, len(vs.TSs), peakScore(vs))
	fmt.Fprint(h.out, "  relevant? [y/N] ")
	ans := false
	if h.in.Scan() {
		t := strings.TrimSpace(strings.ToLower(h.in.Text()))
		ans = t == "y" || t == "yes"
	}
	h.answers[vs.Index] = ans
	return ans
}

// peakScore mirrors the §5.3 heuristic for display.
func peakScore(vs window.VS) float64 {
	best := 0.0
	for _, ts := range vs.TSs {
		for _, f := range ts.Vectors {
			s := 0.0
			for _, v := range f {
				s += v * v
			}
			if s > best {
				best = s
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
