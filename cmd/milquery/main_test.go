package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"milvideo/internal/core"
	"milvideo/internal/sim"
	"milvideo/internal/videodb"
)

// testCatalog builds a small catalog on disk.
func testCatalog(t *testing.T) string {
	t.Helper()
	scene, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 300, Seed: 5, SpawnEvery: 80, WallCrash: 2, FPS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	clip, err := core.ProcessScene(scene, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := clip.Record("tunnel")
	if err != nil {
		t.Fatal(err)
	}
	db := videodb.New()
	if err := db.Add(rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunListsClips(t *testing.T) {
	path := testCatalog(t)
	var out bytes.Buffer
	if err := run(path, "", "mil", 3, 10, false, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tunnel") {
		t.Fatalf("listing missing clip:\n%s", out.String())
	}
}

func TestRunSimulatedSession(t *testing.T) {
	path := testCatalog(t)
	for _, engine := range []string{"mil", "weighted", "rocchio", "emdd", "misvm"} {
		var out bytes.Buffer
		if err := run(path, "tunnel", engine, 2, 5, false, strings.NewReader(""), &out); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(out.String(), "accuracy") {
			t.Fatalf("%s: no accuracy report:\n%s", engine, out.String())
		}
	}
}

func TestRunInteractiveSession(t *testing.T) {
	path := testCatalog(t)
	// Answer "y" to everything; plenty of lines for two rounds.
	answers := strings.Repeat("y\n", 50)
	var out bytes.Buffer
	if err := run(path, "tunnel", "mil", 2, 5, true, strings.NewReader(answers), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relevant? [y/N]") {
		t.Fatalf("no interactive prompt:\n%s", out.String())
	}
	// All-yes answers make every round 100% accurate.
	if !strings.Contains(out.String(), "100.0%") {
		t.Fatalf("expected 100%% rounds:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := testCatalog(t)
	var out bytes.Buffer
	if err := run(path, "tunnel", "nonsense", 2, 5, false, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run(path, "missing-clip", "mil", 2, 5, false, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing clip accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.gob"), "", "mil", 2, 5, false, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing catalog accepted")
	}
}
