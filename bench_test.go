// Package milvideo's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment
// index) and measure the cost of each pipeline stage. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks report the reproduced accuracy series via
// b.ReportMetric (columns named after the feedback rounds) so the
// paper-vs-measured comparison in EXPERIMENTS.md can be regenerated
// from benchmark output alone.
package milvideo_test

import (
	"strconv"
	"strings"
	"testing"

	"milvideo/internal/core"
	"milvideo/internal/experiments"
	"milvideo/internal/kernel"
	"milvideo/internal/mil"
	"milvideo/internal/render"
	"milvideo/internal/retrieval"
	"milvideo/internal/rf"
	"milvideo/internal/segment"
	"milvideo/internal/sim"
	"milvideo/internal/svm"
	"milvideo/internal/trajectory"
	"milvideo/internal/videodb"
	"milvideo/internal/window"

	"math/rand"

	"milvideo/internal/geom"
)

// reportTable attaches a table's accuracy cells as benchmark metrics
// and logs the formatted table once.
func reportTable(b *testing.B, t experiments.Table) {
	b.Helper()
	b.Log("\n" + t.Format())
	for _, row := range t.Rows {
		for j := 1; j < len(row); j++ {
			cell := strings.TrimSuffix(row[j], "%")
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				continue // non-numeric cell
			}
			name := sanitizeMetric(row[0] + "/" + t.Header[j])
			b.ReportMetric(v, name)
		}
	}
}

func sanitizeMetric(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}

// BenchmarkFigure8 regenerates the paper's Figure 8 (E1): retrieval
// accuracy over five feedback rounds on the tunnel clip, proposed
// MIL-OCSVM vs the weighted-RF baseline.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (E2) on the intersection clip.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkDatasetStats regenerates the §6.2 dataset statistics (E3).
func BenchmarkDatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DatasetStats()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkCurveFit regenerates Figure 2 (E4): the polynomial
// trajectory fit across degrees.
func BenchmarkCurveFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CurveFit()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkNormalizationAblation regenerates the §6.2 weight-
// normalization comparison (E5).
func BenchmarkNormalizationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.NormalizationAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkZSweep regenerates the Eq. (9) z calibration (E6).
func BenchmarkZSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ZSweep()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkWindowSweep regenerates the §5.1 window-size ablation (E7).
func BenchmarkWindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.WindowSweep()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkEventGenerality regenerates the §4 generality experiment
// (E8): U-turn and speeding queries.
func BenchmarkEventGenerality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.EventGenerality()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkInstanceSelectionAblation regenerates the §5.3 training-
// set selection ablation (DESIGN.md choice 1/2).
func BenchmarkInstanceSelectionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.InstanceSelectionAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkCrossCamera regenerates the §6.2 future-work cross-camera
// normalization experiment (DESIGN.md E9).
func BenchmarkCrossCamera(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CrossCamera()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkMILCompare regenerates the MIL solver comparison
// (One-class SVM vs EM-DD, DESIGN.md E10).
func BenchmarkMILCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.MILCompare()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkIlluminationDrift regenerates the background-model
// robustness experiment (DESIGN.md E11).
func BenchmarkIlluminationDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.IlluminationDrift()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// --- pipeline-stage microbenchmarks ------------------------------------

// benchScene builds a small scene once for the stage benchmarks.
func benchScene(b *testing.B) *sim.Scene {
	b.Helper()
	s, err := sim.Tunnel(sim.TunnelConfig{
		Frames: 300, Seed: 9, SpawnEvery: 80, WallCrash: 1, FPS: 25,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkPipelineEndToEnd measures the full vision+learning pipeline
// on a 300-frame clip.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	scene := benchScene(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProcessScene(scene, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentationPerFrame measures single-frame vehicle
// extraction (background subtraction + morphology + components +
// SPCPE refinement).
func BenchmarkSegmentationPerFrame(b *testing.B) {
	scene := benchScene(b)
	clip, err := core.ProcessScene(scene, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ex, err := segment.NewExtractor(clip.Video, segment.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	img := clip.Video.Frames[len(clip.Video.Frames)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Segments(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackgroundModel measures the histogram temporal-median
// background learner over every frame of the 300-frame bench clip
// (the large-sample regime the histogram path exists for).
func BenchmarkBackgroundModel(b *testing.B) {
	scene := benchScene(b)
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segment.LearnBackground(clip.Frames, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackgroundModelRef measures the sort-per-pixel reference
// implementation on the same input — the baseline the histogram path
// is measured against (see DESIGN.md's Performance section).
func BenchmarkBackgroundModelRef(b *testing.B) {
	scene := benchScene(b)
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segment.LearnBackgroundRef(clip.Frames, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelGram measures the symmetric parallel Gram matrix at
// retrieval-database scale (200 instances of dimension 9).
func BenchmarkKernelGram(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	X := make([][]float64, 200)
	for i := range X {
		row := make([]float64, 9)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	k := kernel.RBF{Sigma: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernel.Matrix(k, X); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneClassSVMTrain measures OCSVM training at the size the
// retrieval loop uses (tens of 9-dim instances).
func BenchmarkOneClassSVMTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 60)
	for i := range X {
		row := make([]float64, 9)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.TrainOneClass(X, svm.Options{Nu: 0.2, Kernel: kernel.RBF{Sigma: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMILRank measures one full re-ranking round of the MIL
// engine over a synthetic 200-bag database.
func BenchmarkMILRank(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		nts := 1 + rng.Intn(3)
		for k := 0; k < nts; k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db = append(db, vs)
		if i < 20 {
			if i%2 == 0 {
				labels[i] = mil.Positive
			} else {
				labels[i] = mil.Negative
			}
		}
	}
	engine := retrieval.MILEngine{Opt: mil.DefaultOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Rank(db, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMILRankCached is BenchmarkMILRank with the cross-round
// kernel cache attached: iterations after the first rank from warm
// distances, modeling rounds 2+ of a feedback session.
func BenchmarkMILRankCached(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		nts := 1 + rng.Intn(3)
		for k := 0; k < nts; k++ {
			ts := window.TS{TrackID: i*10 + k}
			for p := 0; p < 3; p++ {
				ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
			}
			vs.TSs = append(vs.TSs, ts)
		}
		db = append(db, vs)
		if i < 20 {
			if i%2 == 0 {
				labels[i] = mil.Positive
			} else {
				labels[i] = mil.Negative
			}
		}
	}
	engine := retrieval.MILEngine{Opt: mil.DefaultOptions(), Cache: retrieval.NewMILCache()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Rank(db, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedRFRank measures the baseline's re-ranking round on
// the same database shape.
func BenchmarkWeightedRFRank(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var db []window.VS
	labels := map[int]mil.Label{}
	for i := 0; i < 200; i++ {
		vs := window.VS{Index: i, StartFrame: i * 15, EndFrame: i*15 + 10}
		ts := window.TS{TrackID: i}
		for p := 0; p < 3; p++ {
			ts.Vectors = append(ts.Vectors, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64()})
		}
		vs.TSs = []window.TS{ts}
		db = append(db, vs)
		if i < 20 {
			labels[i] = mil.Positive
		}
	}
	engine := retrieval.WeightedEngine{Norm: rf.NormPercentage}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Rank(db, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestSequentialClip measures the stage-by-stage reference
// pipeline (segment all frames, then track, then window) on a
// pre-rendered 300-frame clip — the baseline for the streaming path.
func BenchmarkIngestSequentialClip(b *testing.B) {
	scene := benchScene(b)
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProcessVideoSequential(clip, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestStreamClip measures the streaming pipeline
// (segmentation workers overlapped with tracking, pooled buffers) on
// the same pre-rendered clip.
func BenchmarkIngestStreamClip(b *testing.B) {
	scene := benchScene(b)
	clip, err := render.Video(scene, render.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProcessVideoStream(clip, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatchScenes measures concurrent multi-clip ingest:
// four short distinct-seed clips rendered, processed and stored into a
// fresh catalog per op.
func BenchmarkIngestBatchScenes(b *testing.B) {
	jobs := make([]core.IngestJob, 4)
	for i := range jobs {
		s, err := sim.Tunnel(sim.TunnelConfig{
			Frames: 100, Seed: int64(i + 1), SpawnEvery: 80, WallCrash: 1, FPS: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs[i] = core.IngestJob{Name: s.Name + "-" + strconv.Itoa(i+1), Scene: s}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := core.IngestScenes(videodb.New(), jobs, core.IngestOptions{Config: core.DefaultConfig()})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkTrajectoryFit measures the Eq. (2) least-squares fit at the
// paper's 4th degree over a 100-point track.
func BenchmarkTrajectoryFit(b *testing.B) {
	frames := make([]int, 100)
	pts := make([]geom.Point, 100)
	for i := range frames {
		frames[i] = i
		t := float64(i)
		pts[i] = geom.Pt(10+2.5*t, 120+0.01*t*t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trajectory.Fit(frames, pts, 4); err != nil {
			b.Fatal(err)
		}
	}
}
